(* Adversarial soundness suite for batched verification (ISSUE 6).

   The RLC fold replaces N pairing checks with one, so the thing that
   must not regress is REJECTION: a forged batch member has to sink the
   whole batch no matter where it sits.  For each backend the suite
   builds a block of four proofs of distinct statements and then sweeps
   every slot with every single-element forgery — swapping in another
   member's proof, flipping a public input, swapping in another member's
   vk — asserting the batch rejects each time.  Valid blocks (including
   mixed-circuit blocks), the empty block and singletons pin the accept
   side; the scalar tests pin the Fiat-Shamir derivation the fold's
   soundness argument relies on. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Proof_system = Zkdet_core.Proof_system

let replace l i x = List.mapi (fun j y -> if j = i then x else y) l
let nth = List.nth

module Make (P : Proof_system.S) = struct
  let prover_st = Test_util.rng ~salt:("batch-verify-" ^ P.name) ()

  (* Distinct statements with the same public arity: slot k proves
     knowledge of a square root of the public value (5+k)^2, so a
     cross-slot proof swap is only caught cryptographically, not by an
     arity check.  The slot-distinct constant gate keeps the four vks
     different even under Plonk's deterministic setup (the vk-swap sweep
     would otherwise be vacuous there). *)
  let square_circuit k =
    let cs = Cs.create () in
    let x = Fr.of_int (5 + k) in
    let pub = Cs.public_input cs (Fr.mul x x) in
    let w = Cs.fresh cs x in
    Cs.assert_equal cs (Cs.mul cs w w) pub;
    ignore (Cs.add_const cs w (Fr.of_int (100 + k)));
    Cs.compile cs

  (* A different shape entirely, for the mixed-circuit batch: knowledge
     of factors behind a public product and sum. *)
  let factor_circuit () =
    let cs = Cs.create () in
    let x = Fr.of_int 11 and y = Fr.of_int 13 in
    let prod = Cs.public_input cs (Fr.mul x y) in
    let sum = Cs.public_input cs (Fr.add x y) in
    let xw = Cs.fresh cs x in
    let yw = Cs.fresh cs y in
    Cs.assert_equal cs (Cs.mul cs xw yw) prod;
    Cs.assert_equal cs (Cs.add cs xw yw) sum;
    Cs.compile cs

  let item_of compiled =
    let pk = P.setup ~st:prover_st compiled in
    let proof = P.prove ~st:prover_st pk compiled in
    (P.vk pk, compiled.Cs.public_values, proof)

  let batch = lazy (List.init 4 (fun k -> item_of (square_circuit k)))
  let mixed_item = lazy (item_of (factor_circuit ()))

  let valid_accepts () =
    Alcotest.(check bool) "4 valid proofs accept" true
      (P.verify_batch (Lazy.force batch))

  let mixed_accepts () =
    Alcotest.(check bool) "mixed-circuit batch accepts" true
      (P.verify_batch (Lazy.force batch @ [ Lazy.force mixed_item ]))

  let empty_accepts () =
    Alcotest.(check bool) "empty batch accepts" true (P.verify_batch [])

  let singleton_matches_verify () =
    let ((vk, publics, proof) as item) = nth (Lazy.force batch) 0 in
    Alcotest.(check bool) "valid singleton" (P.verify vk publics proof)
      (P.verify_batch [ item ]);
    let bad = Array.copy publics in
    bad.(0) <- Fr.add bad.(0) Fr.one;
    Alcotest.(check bool) "invalid singleton" (P.verify vk bad proof)
      (P.verify_batch [ (vk, bad, proof) ])

  (* One forged slot sinks the batch, wherever it sits. *)
  let sweep name forge () =
    let batch = Lazy.force batch in
    List.iteri
      (fun i _ ->
        Alcotest.(check bool)
          (Printf.sprintf "%s at slot %d rejects" name i)
          false
          (P.verify_batch (replace batch i (forge batch i))))
      batch

  let proof_swap_rejects =
    sweep "proof swap" (fun batch i ->
        let vk, publics, _ = nth batch i in
        let _, _, other = nth batch ((i + 1) mod List.length batch) in
        (vk, publics, other))

  let public_flip_rejects =
    sweep "public flip" (fun batch i ->
        let vk, publics, proof = nth batch i in
        let bad = Array.copy publics in
        bad.(0) <- Fr.add bad.(0) Fr.one;
        (vk, bad, proof))

  let vk_swap_rejects =
    sweep "vk swap" (fun batch i ->
        let _, publics, proof = nth batch i in
        let other_vk, _, _ = nth batch ((i + 1) mod List.length batch) in
        (other_vk, publics, proof))

  (* The RLC scalars: same batch, same scalars (replayable transcript);
     any change to a member changes them (no precomputable fold). *)
  let scalars_deterministic () =
    let batch = Lazy.force batch in
    let s1 = P.batch_scalars batch and s2 = P.batch_scalars batch in
    Alcotest.(check bool) "same batch, same scalars" true
      (List.for_all2 Fr.equal s1 s2);
    let vk, publics, proof = nth batch 0 in
    let bad = Array.copy publics in
    bad.(0) <- Fr.add bad.(0) Fr.one;
    let s3 = P.batch_scalars (replace batch 0 (vk, bad, proof)) in
    Alcotest.(check bool) "mutated member, different scalars" false
      (List.for_all2 Fr.equal s1 s3)

  (* prepared_vk must agree with the plain verifier on both verdicts. *)
  let prepared_matches_verify () =
    let vk, publics, proof = nth (Lazy.force batch) 0 in
    let pvk = P.prepare_vk vk in
    Alcotest.(check bool) "prepared accepts valid" true
      (P.verify_prepared pvk publics proof);
    let bad = Array.copy publics in
    bad.(0) <- Fr.add bad.(0) Fr.one;
    Alcotest.(check bool) "prepared rejects forged" false
      (P.verify_prepared pvk bad proof)

  let tests =
    ( P.name,
      [ Alcotest.test_case "batch of valid proofs accepts" `Quick valid_accepts;
        Alcotest.test_case "mixed-circuit batch accepts" `Quick mixed_accepts;
        Alcotest.test_case "empty batch accepts" `Quick empty_accepts;
        Alcotest.test_case "singleton agrees with verify" `Quick
          singleton_matches_verify;
        Alcotest.test_case "proof swap rejects at every slot" `Quick
          proof_swap_rejects;
        Alcotest.test_case "public flip rejects at every slot" `Quick
          public_flip_rejects;
        Alcotest.test_case "vk swap rejects at every slot" `Quick
          vk_swap_rejects;
        Alcotest.test_case "RLC scalars deterministic and input-bound" `Quick
          scalars_deterministic;
        Alcotest.test_case "prepared vk agrees with verify" `Quick
          prepared_matches_verify ] )
end

module Plonk_suite = Make (Proof_system.Plonk)
module Groth16_suite = Make (Proof_system.Groth16)

let () =
  Alcotest.run "zkdet_batch_verify" [ Plonk_suite.tests; Groth16_suite.tests ]
