(* Deterministic constructions behind the committed golden vectors in
   test/vectors/.  [gen_vectors] writes them; [test_codec] re-derives the
   bytes and compares against the committed hex, so any accidental change
   to a wire format shows up as a byte-level diff.

   Everything here is pinned to fixed literal seeds (never
   ZKDET_TEST_SEED) and bypasses the SRS disk cache: the vectors assert
   the encodings, independent of the test environment. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Preprocess = Zkdet_plonk.Preprocess
module Prover = Zkdet_plonk.Prover
module Proof = Zkdet_plonk.Proof
module Groth16 = Zkdet_groth16.Groth16
module Srs = Zkdet_kzg.Srs
module Chain = Zkdet_chain.Chain
module Storage = Zkdet_storage.Storage
module C = Zkdet_codec.Codec

(* Lowercase hex, 64 chars (32 bytes) per line, trailing newline. *)
let to_hex (s : string) : string =
  let b = Buffer.create ((String.length s * 2) + (String.length s / 32) + 2) in
  String.iteri
    (fun i c ->
      if i > 0 && i mod 32 = 0 then Buffer.add_char b '\n';
      Buffer.add_string b (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.add_char b '\n';
  Buffer.contents b

(* Inverse of {!to_hex}; whitespace-insensitive. *)
let of_hex (s : string) : string =
  let b = Buffer.create (String.length s / 2) in
  let hi = ref (-1) in
  String.iter
    (fun c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> -1
      in
      if v >= 0 then
        if !hi < 0 then hi := v
        else begin
          Buffer.add_char b (Char.chr ((!hi * 16) + v));
          hi := -1
        end)
    s;
  Buffer.contents b

(* The toy circuit shared with the plonk/groth16 suites:
   x*y + x + 3 = pub, witness (4, 6). *)
let circuit () =
  let x = Fr.of_int 4 and y = Fr.of_int 6 in
  let cs = Cs.create () in
  let pub = Cs.public_input cs (Fr.add (Fr.add (Fr.mul x y) x) (Fr.of_int 3)) in
  let xw = Cs.fresh cs x in
  let yw = Cs.fresh cs y in
  let xy = Cs.mul cs xw yw in
  let sum = Cs.add cs xy xw in
  let out = Cs.add_const cs sum (Fr.of_int 3) in
  Cs.assert_equal cs out pub;
  Cs.compile cs

let plonk_vectors () =
  let compiled = circuit () in
  let srs =
    Srs.unsafe_generate ~st:(Random.State.make [| 0xC0DEC; 1 |]) ~size:64 ()
  in
  let pk = Preprocess.setup srs compiled in
  let proof = Prover.prove ~st:(Random.State.make [| 0xC0DEC; 2 |]) pk compiled in
  [ ("proof_plonk.hex", Proof.wire_encode proof);
    ("vk_plonk.hex", Preprocess.vk_to_bytes pk.Preprocess.vk) ]

let groth16_vectors () =
  let compiled = circuit () in
  let pk = Groth16.setup ~st:(Random.State.make [| 0xC0DEC; 3 |]) compiled in
  let proof = Groth16.prove ~st:(Random.State.make [| 0xC0DEC; 4 |]) pk compiled in
  [ ("proof_groth16.hex", Groth16.proof_to_bytes proof);
    ("vk_groth16.hex", Groth16.vk_to_bytes pk.Groth16.vk) ]

(* A small ledger exercising every snapshot field: balances, a mined
   block with an event, a pending transaction, a reverted transaction and
   per-contract storage. *)
let demo_chain () =
  let chain = Chain.create () in
  let alice = Chain.Address.of_seed "alice" in
  let bob = Chain.Address.of_seed "bob" in
  Chain.faucet chain alice 1_000_000;
  Chain.faucet chain bob 250_000;
  ignore
    (Chain.execute chain ~sender:alice ~label:"registry:mint" ~contract:"registry" (fun env ->
         Chain.emit env ~contract:"registry" ~name:"Mint"
           ~data:[ "token-1"; alice ]));
  Chain.storage_set chain ~contract:"registry" ~key:"token-1/owner" ~value:alice;
  Chain.storage_set chain ~contract:"registry" ~key:"token-1/uri"
    ~value:"zb00demo";
  ignore (Chain.mine chain);
  ignore
    (Chain.execute chain ~sender:bob ~label:"market:bid" ~contract:"market" (fun env ->
         Chain.emit env ~contract:"market" ~name:"Bid" ~data:[ "token-1"; "42" ]));
  ignore
    (Chain.execute chain ~sender:bob ~label:"market:fail" ~contract:"market" (fun _ ->
         raise (Chain.Revert "demo revert")));
  chain

(* A complete ZSRS v2 envelope with a persisted fixed-base table section
   at a non-default window width, pinning the cache-file layout described
   in FORMATS.md (window byte + pre-shifted row array + row validation). *)
let srs_v2_vector () =
  let srs =
    Srs.unsafe_generate ~st:(Random.State.make [| 0xC0DEC; 5 |]) ~size:4 ()
  in
  srs.Srs.fb <-
    Some (Zkdet_curve.G1.Fixed_base.msm_create ~window:12 srs.Srs.g1_powers);
  ("srs_v2.hex", Srs.to_bytes srs)

let manifest_cids =
  [ Storage.Cid.of_bytes "chunk-0"; Storage.Cid.of_bytes "chunk-1";
    Storage.Cid.of_bytes "chunk-2" ]

(* (filename, raw bytes) for every committed vector. *)
let all () : (string * string) list =
  plonk_vectors () @ groth16_vectors ()
  @ [ ("srs_header.hex", Srs.header_bytes ~size:16);
      srs_v2_vector ();
      ("chain_snapshot.hex", Chain.snapshot (demo_chain ()));
      ("manifest.hex", C.encode Storage.manifest_codec manifest_cids) ]
