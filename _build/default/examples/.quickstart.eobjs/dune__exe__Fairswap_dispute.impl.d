examples/fairswap_dispute.ml: Array List Option Printf Zkdet_chain Zkdet_contracts Zkdet_core Zkdet_field Zkdet_poseidon
