examples/model_exchange.ml: Array Printf String Unix Zkdet_apps Zkdet_circuit Zkdet_core Zkdet_field
