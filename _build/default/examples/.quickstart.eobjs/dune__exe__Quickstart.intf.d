examples/quickstart.mli:
