examples/marketplace_tour.mli:
