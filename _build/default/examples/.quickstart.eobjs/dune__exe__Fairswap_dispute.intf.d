examples/fairswap_dispute.mli:
