examples/quickstart.ml: Array Printf String Zkdet_chain Zkdet_contracts Zkdet_core Zkdet_field
