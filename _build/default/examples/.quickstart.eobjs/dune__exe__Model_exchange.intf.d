examples/model_exchange.mli:
