examples/marketplace_tour.ml: List Option Printf String Zkdet_chain Zkdet_contracts Zkdet_core Zkdet_field
