(* Computational delegation (paper §IV-E.1):

     dune exec examples/model_exchange.exe

   A data owner trains a logistic-regression model on their private
   dataset and sells the *model* as a derived data asset. The proof of
   transformation shows the model genuinely converged on the committed
   training data — without revealing either. *)

module Fr = Zkdet_field.Bn254.Fr
module Env = Zkdet_core.Env
module Circuits = Zkdet_core.Circuits
module Transform = Zkdet_core.Transform
module Exchange = Zkdet_core.Exchange
module Logreg = Zkdet_apps.Logreg

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let () =
  step "universal setup (larger circuits: ML predicates)";
  let env = Env.create ~log2_max_gates:15 () in
  let config =
    { Logreg.n_samples = 2; n_features = 1; learning_rate = 0.1; epsilon = 0.05 }
  in
  Logreg.register config;

  step "owner trains on private data (%d samples)" config.Logreg.n_samples;
  let xs, ys = Logreg.synthetic_dataset config in
  let beta, iters = Logreg.train config xs ys in
  Printf.printf "   converged after %d gradient steps; loss = %.4f\n" iters
    (Logreg.loss xs ys beta);
  Printf.printf "   model: beta = [%s]\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.4f") beta)));

  step "seal the training data and derive the model with pi_t (convergence proof)";
  let source = Transform.seal ~st:env.Env.rng (Logreg.encode_source xs ys) in
  let t0 = Unix.gettimeofday () in
  let model, link = Transform.process env source ~spec:(Logreg.spec config) in
  Printf.printf "   proof of training generated in %.1fs (%d-parameter model)\n"
    (Unix.gettimeofday () -. t0)
    (Transform.size model);

  step "anyone verifies the training proof from the two commitments alone";
  let t1 = Unix.gettimeofday () in
  let ok = Transform.verify_link env link in
  Printf.printf "   verification: %b in %.2fs — no data, no model revealed\n" ok
    (Unix.gettimeofday () -. t1);

  step "sell the model through the key-secure exchange";
  let offer = Exchange.make_offer model ~predicate:Circuits.Trivial ~price:1_000_000 in
  let pi_p = Exchange.prove_validation env model Circuits.Trivial in
  assert (Exchange.verify_validation env offer pi_p);
  let k_v, h_v = Exchange.buyer_blinding ~st:env.Env.rng () in
  let k_c, pi_k = Exchange.prove_key env model ~k_v in
  assert (Exchange.verify_key env ~k_c ~c_k:offer.Exchange.c_k ~h_v pi_k);
  let bought = Exchange.recover offer ~k_c ~k_v in
  let recovered_beta = Array.map Zkdet_circuit.Fixed_point.to_float bought in
  Printf.printf "   buyer decrypted the model: beta = [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.4f") recovered_beta)));
  print_endline "\nmodel exchange complete."
