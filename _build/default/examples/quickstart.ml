(* Quickstart: the whole ZKDET pipeline in one file.

     dune exec examples/quickstart.exe

   A data owner publishes an encrypted dataset as an NFT, a buyer audits
   its proofs straight from chain + storage, and the two run the
   key-secure exchange: payment against the key, with the key itself
   never touching the chain. *)

module Fr = Zkdet_field.Bn254.Fr
module Env = Zkdet_core.Env
module Circuits = Zkdet_core.Circuits
module Marketplace = Zkdet_core.Marketplace
module Transform = Zkdet_core.Transform
module Chain = Zkdet_chain.Chain

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let () =
  step "universal setup (simulated powers-of-tau, one-time)";
  let env = Env.create ~log2_max_gates:13 () in

  step "bootstrap: chain, storage network, NFT registry, verifier, escrow";
  let operator = Chain.Address.of_seed "operator" in
  let m = Marketplace.bootstrap env ~operator in

  let alice = Chain.Address.of_seed "alice" in
  let bob = Chain.Address.of_seed "bob" in

  step "alice publishes a dataset (encrypt, commit, prove, upload, mint)";
  let data = Array.init 2 (fun i -> Fr.of_int ((i + 1) * 111)) in
  let token, sealed =
    match Marketplace.publish m ~owner:alice data with
    | Ok r -> r
    | Error e -> failwith e
  in
  Printf.printf "   minted data NFT #%d\n" token;
  Printf.printf "   dataset commitment c_d = %s...\n"
    (String.sub (Fr.to_string sealed.Transform.c_d) 0 24);

  step "bob audits the token: fetches ciphertext + pi_e, re-verifies";
  (match Marketplace.audit_provenance m ~auditor_id:bob token with
  | Ok n -> Printf.printf "   audit OK (%d token(s) verified)\n" n
  | Error _ -> failwith "audit failed");

  step "key-secure exchange: phase 1 (pi_p) + escrow + phase 2 (pi_k)";
  let total = Array.fold_left Fr.add Fr.zero data in
  let recovered =
    match
      Marketplace.trade m ~seller:alice ~buyer:bob ~token_id:token ~sealed
        ~predicate:(Circuits.Sum_equals total) ~price:50_000
    with
    | Ok d -> d
    | Error _ -> failwith "trade failed"
  in
  Printf.printf "   bob decrypted %d entries; first = %s\n"
    (Array.length recovered)
    (Fr.to_string recovered.(0));
  Printf.printf "   token #%d owner is now bob: %b\n" token
    (Zkdet_contracts.Erc721.owner_of m.Marketplace.nft token = Some bob);
  Printf.printf "   chain validates: %b, blocks: %d\n"
    (Chain.validate m.Marketplace.chain)
    (Chain.block_count m.Marketplace.chain);
  print_endline "\nquickstart complete."
