module Nat = Zkdet_num.Nat

let nat = Alcotest.testable Nat.pp Nat.equal

let check_nat = Alcotest.check nat

let test_of_to_int () =
  Alcotest.(check (option int)) "roundtrip 0" (Some 0) Nat.(to_int zero);
  Alcotest.(check (option int)) "roundtrip 1" (Some 1) Nat.(to_int one);
  let v = 123_456_789_012_345 in
  Alcotest.(check (option int)) "roundtrip large" (Some v) Nat.(to_int (of_int v))

let test_decimal_roundtrip () =
  let cases =
    [ "0"; "1"; "9"; "10"; "4294967296"; "18446744073709551616";
      "21888242871839275222246405745257275088696311157297823662689037894645226208583" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string) s s Nat.(to_decimal (of_decimal s)))
    cases

let test_hex_roundtrip () =
  let n = Nat.of_decimal "340282366920938463463374607431768211455" in
  check_nat "hex roundtrip" n (Nat.of_hex (Nat.to_hex n));
  Alcotest.(check string) "ff" "ff" Nat.(to_hex (of_int 255));
  check_nat "0x prefix" (Nat.of_int 255) (Nat.of_hex "0xFF")

let test_add_sub () =
  let a = Nat.of_decimal "987654321098765432109876543210" in
  let b = Nat.of_decimal "123456789012345678901234567890" in
  let s = Nat.add a b in
  check_nat "a+b-b = a" a (Nat.sub s b);
  check_nat "a+b-a = b" b (Nat.sub s a);
  Alcotest.(check string)
    "sum" "1111111110111111111011111111100" (Nat.to_decimal s);
  Alcotest.check_raises "negative sub" (Invalid_argument "Nat.sub: negative result")
    (fun () -> ignore (Nat.sub b a))

let test_mul () =
  let a = Nat.of_decimal "123456789012345678901234567890" in
  let b = Nat.of_decimal "999999999999999999999999999999" in
  Alcotest.(check string)
    "product"
    "123456789012345678901234567889876543210987654321098765432110"
    Nat.(to_decimal (mul a b));
  check_nat "mul zero" Nat.zero (Nat.mul a Nat.zero);
  check_nat "mul one" a (Nat.mul a Nat.one)

let test_divmod () =
  let a = Nat.of_decimal "123456789012345678901234567890123456789" in
  let b = Nat.of_decimal "987654321987654321" in
  let q, r = Nat.divmod a b in
  check_nat "a = q*b + r" a Nat.(add (mul q b) r);
  Alcotest.(check bool) "r < b" true (Nat.compare r b < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Nat.divmod a Nat.zero));
  let q2, r2 = Nat.divmod b a in
  check_nat "small/large quotient" Nat.zero q2;
  check_nat "small/large remainder" b r2

let test_shifts () =
  let a = Nat.of_decimal "123456789012345678901234567890" in
  check_nat "shl then shr" a Nat.(shift_right (shift_left a 137) 137);
  check_nat "shl = mul 2^k" (Nat.mul a (Nat.pow Nat.two 63)) (Nat.shift_left a 63);
  check_nat "shr drops" (Nat.div a (Nat.pow Nat.two 10)) (Nat.shift_right a 10)

let test_bits () =
  Alcotest.(check int) "bits 0" 0 (Nat.num_bits Nat.zero);
  Alcotest.(check int) "bits 1" 1 (Nat.num_bits Nat.one);
  Alcotest.(check int) "bits 2^100" 101 (Nat.num_bits (Nat.pow Nat.two 100));
  Alcotest.(check bool) "bit 100 set" true (Nat.testbit (Nat.pow Nat.two 100) 100);
  Alcotest.(check bool) "bit 99 clear" false (Nat.testbit (Nat.pow Nat.two 100) 99)

let test_bytes () =
  let n = Nat.of_hex "0102030405060708090a" in
  let s = Nat.to_bytes_be ~length:12 n in
  Alcotest.(check int) "padded length" 12 (String.length s);
  check_nat "bytes roundtrip" n (Nat.of_bytes_be s);
  Alcotest.(check char) "padding" '\x00' s.[0];
  Alcotest.(check char) "low byte" '\x0a' s.[11]

let test_pow () =
  Alcotest.(check string) "2^128" "340282366920938463463374607431768211456"
    Nat.(to_decimal (pow two 128));
  check_nat "x^0" Nat.one (Nat.pow (Nat.of_int 12345) 0)

(* Property tests *)
let gen_nat =
  QCheck.Gen.(
    map
      (fun ds ->
        let s = String.concat "" (List.map string_of_int ds) in
        Nat.of_decimal (if s = "" then "0" else s))
      (list_size (int_range 1 30) (int_range 0 9)))

let arb_nat = QCheck.make ~print:Nat.to_decimal gen_nat

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:200 (QCheck.pair arb_nat arb_nat)
    (fun (a, b) -> Nat.(equal (add a b) (add b a)))

let prop_mul_assoc =
  QCheck.Test.make ~name:"mul associative" ~count:100
    (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
      Nat.(equal (mul (mul a b) c) (mul a (mul b c))))

let prop_distrib =
  QCheck.Test.make ~name:"mul distributes over add" ~count:100
    (QCheck.triple arb_nat arb_nat arb_nat) (fun (a, b, c) ->
      Nat.(equal (mul a (add b c)) (add (mul a b) (mul a c))))

let prop_divmod =
  QCheck.Test.make ~name:"divmod identity" ~count:200 (QCheck.pair arb_nat arb_nat)
    (fun (a, b) ->
      QCheck.assume (not (Nat.is_zero b));
      let q, r = Nat.divmod a b in
      Nat.(equal a (add (mul q b) r)) && Nat.compare r b < 0)

let prop_decimal_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:200 arb_nat (fun a ->
      Nat.(equal a (of_decimal (to_decimal a))))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 arb_nat (fun a ->
      Nat.(equal a (of_hex (to_hex a))))

let props = List.map QCheck_alcotest.to_alcotest
    [ prop_add_comm; prop_mul_assoc; prop_distrib; prop_divmod;
      prop_decimal_roundtrip; prop_hex_roundtrip ]

let () =
  Alcotest.run "zkdet_num"
    [ ( "nat",
        [ Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "decimal roundtrip" `Quick test_decimal_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "bits" `Quick test_bits;
          Alcotest.test_case "bytes" `Quick test_bytes;
          Alcotest.test_case "pow" `Quick test_pow ] );
      ("nat-properties", props) ]
