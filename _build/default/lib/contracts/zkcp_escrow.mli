(** The classic ZKCP arbiter (paper §III-C) — the baseline ZKDET improves
    on. The seller redeems a hash-locked payment by {e disclosing} the
    decryption key on-chain; {!disclosed_key} models the resulting public
    read that makes ZKCP unusable over public storage. *)

module Fr = Zkdet_field.Bn254.Fr
module Chain = Zkdet_chain.Chain

type deal_status = Locked | Settled | Refunded

type deal = {
  deal_id : int;
  buyer : Chain.Address.t;
  seller : Chain.Address.t;
  amount : int;
  h : Fr.t;  (** H(k) *)
  deadline : int;
  mutable status : deal_status;
  mutable key : Fr.t option;  (** k, PUBLIC once settled *)
}

type t = {
  address : Chain.Address.t;
  deals : (int, deal) Hashtbl.t;
  mutable next_deal : int;
}

val deploy : Chain.t -> deployer:Chain.Address.t -> t * Chain.receipt
val deal : t -> int -> deal option

val lock :
  t -> Chain.t -> buyer:Chain.Address.t -> seller:Chain.Address.t ->
  amount:int -> h:Fr.t -> timeout_blocks:int -> int option * Chain.receipt

val open_key :
  t -> Chain.t -> seller:Chain.Address.t -> deal_id:int -> key:Fr.t ->
  Chain.receipt
(** The Open phase: disclose k; the contract checks H(k) = h and pays. *)

val disclosed_key : t -> int -> Fr.t option
(** What ANY third party reads from the chain after settlement. *)

val refund :
  t -> Chain.t -> buyer:Chain.Address.t -> deal_id:int -> Chain.receipt
