(** FairSwap-style exchange contract (§VII's ADS-based alternative).

    Optimistic flow: lock against Merkle roots of ciphertext and promised
    plaintext plus a key hash; the seller reveals k; after an undisputed
    window the payment finalizes. On a wrong delivery the buyer submits a
    proof of misbehavior whose on-chain verification re-hashes two Merkle
    paths and one MiMC block — dispute gas grows with the data size,
    unlike ZKDET's O(1) verifier. *)

module Fr = Zkdet_field.Bn254.Fr
module Chain = Zkdet_chain.Chain
module Merkle = Zkdet_circuit.Merkle

val poseidon_onchain_gas : int
val mimc_block_onchain_gas : int

type deal_status = Locked | Key_revealed | Finalized | Refunded

type deal = {
  deal_id : int;
  buyer : Chain.Address.t;
  seller : Chain.Address.t;
  amount : int;
  root_ciphertext : Fr.t;
  root_plaintext : Fr.t;
  depth : int;
  h_k : Fr.t;
  dispute_window : int;
  mutable status : deal_status;
  mutable key : Fr.t option;
  mutable reveal_block : int;
}

type t = {
  address : Chain.Address.t;
  deals : (int, deal) Hashtbl.t;
  mutable next_deal : int;
}

val deploy : Chain.t -> deployer:Chain.Address.t -> t * Chain.receipt
val deal : t -> int -> deal option

val lock :
  t -> Chain.t -> buyer:Chain.Address.t -> seller:Chain.Address.t ->
  amount:int -> root_ciphertext:Fr.t -> root_plaintext:Fr.t -> depth:int ->
  h_k:Fr.t -> dispute_window:int -> int option * Chain.receipt

val reveal_key :
  t -> Chain.t -> seller:Chain.Address.t -> deal_id:int -> key:Fr.t ->
  Chain.receipt

type misbehavior_proof = {
  leaf_index : int;
  ciphertext_leaf : Fr.t;
  ciphertext_path : Merkle.path;
  plaintext_leaf : Fr.t;
  plaintext_path : Merkle.path;
}

val complain :
  t -> Chain.t -> buyer:Chain.Address.t -> deal_id:int -> misbehavior_proof ->
  Chain.receipt
(** Refunds the buyer iff the proof shows Dec(k, c_i) <> d_i for a leaf
    of both committed trees. *)

val finalize :
  t -> Chain.t -> seller:Chain.Address.t -> deal_id:int -> Chain.receipt

val disclosed_key : t -> int -> Fr.t option
(** FairSwap shares ZKCP's public-key-disclosure weakness. *)
