lib/contracts/erc721.mli: Hashtbl Zkdet_chain Zkdet_field
