lib/contracts/verifier_contract.mli: Zkdet_chain Zkdet_field Zkdet_plonk
