lib/contracts/verifier_contract.ml: Array String Zkdet_chain Zkdet_field Zkdet_plonk
