lib/contracts/fairswap_escrow.ml: Array Hashtbl String Zkdet_chain Zkdet_circuit Zkdet_field Zkdet_mimc Zkdet_poseidon
