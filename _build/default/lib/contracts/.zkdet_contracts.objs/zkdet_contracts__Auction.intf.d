lib/contracts/auction.mli: Erc721 Hashtbl Zkdet_chain
