lib/contracts/escrow.mli: Hashtbl Verifier_contract Zkdet_chain Zkdet_field Zkdet_plonk
