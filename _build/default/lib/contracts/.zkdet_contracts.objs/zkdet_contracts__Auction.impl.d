lib/contracts/auction.ml: Erc721 Hashtbl Zkdet_chain
