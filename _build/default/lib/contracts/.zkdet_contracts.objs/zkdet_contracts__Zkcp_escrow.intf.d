lib/contracts/zkcp_escrow.mli: Hashtbl Zkdet_chain Zkdet_field
