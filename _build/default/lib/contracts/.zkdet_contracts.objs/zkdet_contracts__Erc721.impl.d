lib/contracts/erc721.ml: Hashtbl List Option String Zkdet_chain Zkdet_field
