lib/contracts/zkcp_escrow.ml: Hashtbl Zkdet_chain Zkdet_field Zkdet_poseidon
