lib/contracts/fairswap_escrow.mli: Hashtbl Zkdet_chain Zkdet_circuit Zkdet_field
