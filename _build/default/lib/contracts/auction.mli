(** Clock (Dutch) auction for data NFTs (paper §III-C): the price decays
    per block from a start price toward a reserve; the first bid at or
    above the clock price wins and triggers the token transfer. *)

module Chain = Zkdet_chain.Chain

type status = Open | Sold | Cancelled

type listing = {
  listing_id : int;
  seller : Chain.Address.t;
  token_id : int;
  start_price : int;
  reserve_price : int;
  decay_per_block : int;
  start_block : int;
  predicate : string;  (** phi, shown to bidders *)
  mutable status : status;
  mutable winner : Chain.Address.t option;
}

type t = {
  address : Chain.Address.t;
  registry : Erc721.t;
  listings : (int, listing) Hashtbl.t;
  mutable next_listing : int;
}

val deploy : Chain.t -> deployer:Chain.Address.t -> Erc721.t -> t * Chain.receipt
val listing : t -> int -> listing option

val current_price : t -> Chain.t -> int -> int option
(** The clock price now; [None] once sold/cancelled. *)

val list_token :
  t -> Chain.t -> seller:Chain.Address.t -> token_id:int -> start_price:int ->
  reserve_price:int -> decay_per_block:int -> predicate:string ->
  int option * Chain.receipt

val bid :
  t -> Chain.t -> bidder:Chain.Address.t -> listing_id:int -> offer:int ->
  Chain.receipt
(** Pays the clock price to the seller and transfers the token. *)

val cancel :
  t -> Chain.t -> seller:Chain.Address.t -> listing_id:int -> Chain.receipt
