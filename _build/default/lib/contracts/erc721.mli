(** The ZKDET data-NFT registry: ERC-721 extended with the fields §III of
    the paper adds — [prev_ids] (provenance), the dataset URI in
    distributed storage, key/data commitments and proof references.
    Every method charges gas through the EVM-style schedule, which is how
    Table II is reproduced. *)

module Fr = Zkdet_field.Bn254.Fr
module Chain = Zkdet_chain.Chain

type transform_kind =
  | Aggregation
  | Partition
  | Duplication
  | Processing of string  (** predicate label *)

val transform_name : transform_kind -> string

type token = {
  token_id : int;
  mutable owner : Chain.Address.t;
  uri : string;  (** storage CID of the ciphertext / manifest *)
  prev_ids : int list;
  transform : transform_kind option;  (** [None] for an original mint *)
  key_commitment : Fr.t;
  data_commitment : Fr.t;
  proof_refs : string list;  (** CIDs of pi_e / pi_t *)
  mutable burned : bool;
}

type t = {
  address : Chain.Address.t;
  code_size : int;
  tokens : (int, token) Hashtbl.t;
  balances : (Chain.Address.t, int) Hashtbl.t;
  approvals : (int, Chain.Address.t) Hashtbl.t;
  mutable next_id : int;
}

val deploy : Chain.t -> deployer:Chain.Address.t -> t * Chain.receipt
(** One-time deployment (Table II row 1). *)

val balance_of : t -> Chain.Address.t -> int
val owner_of : t -> int -> Chain.Address.t option
val token : t -> int -> token option
val exists : t -> int -> bool

val mint :
  t -> Chain.t -> sender:Chain.Address.t -> recipient:Chain.Address.t ->
  uri:string -> key_commitment:Fr.t -> data_commitment:Fr.t ->
  proof_refs:string list -> int option * Chain.receipt
(** Mint an original data token. *)

val mint_derived :
  t -> Chain.t -> sender:Chain.Address.t -> prev_ids:int list ->
  transform:transform_kind -> uri:string -> key_commitment:Fr.t ->
  data_commitment:Fr.t -> proof_refs:string list -> int option * Chain.receipt
(** Mint a token derived by a transformation; the caller must own every
    parent. *)

val mint_partition :
  t -> Chain.t -> sender:Chain.Address.t -> parent:int ->
  children:(string * Fr.t * Fr.t * string list) list ->
  int list option * Chain.receipt
(** Partition into several children in one transaction; Table II's
    per-token cost is the receipt's gas over the child count. *)

val approve :
  t -> Chain.t -> sender:Chain.Address.t -> spender:Chain.Address.t ->
  token_id:int -> Chain.receipt

val transfer_from :
  t -> Chain.t -> sender:Chain.Address.t -> from:Chain.Address.t ->
  to_:Chain.Address.t -> token_id:int -> Chain.receipt

val burn : t -> Chain.t -> sender:Chain.Address.t -> token_id:int -> Chain.receipt

val provenance : t -> int -> token list
(** Off-chain view: walk prevIds[] back to the sources (Fig. 2),
    de-duplicated, queried token first. *)
