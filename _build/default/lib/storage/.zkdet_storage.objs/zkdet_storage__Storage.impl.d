lib/storage/storage.ml: Array Buffer Bytes Char Format Hashtbl List String Zkdet_field Zkdet_hash
