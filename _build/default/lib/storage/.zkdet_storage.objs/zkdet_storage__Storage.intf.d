lib/storage/storage.mli: Format Hashtbl Zkdet_field
