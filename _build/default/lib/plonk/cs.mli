(** Plonk constraint system and circuit builder.

    Rows of [qL*a + qR*b + qO*c + qM*a*b + qC + PI = 0] over three wire
    columns; copy constraints arise from wires sharing variables. The
    builder carries concrete values, so one synthesis pass yields both
    the circuit structure (for preprocessing/verification) and the
    witness (for proving). Synthesis must be data-independent: gadget
    control flow may not branch on witness values. *)

module Fr = Zkdet_field.Bn254.Fr

type wire = int

type gate = {
  ql : Fr.t;
  qr : Fr.t;
  qo : Fr.t;
  qm : Fr.t;
  qc : Fr.t;
  a : wire;
  b : wire;
  c : wire;
}

type t

val create : unit -> t

val value : t -> wire -> Fr.t
(** The current witness value on a wire. *)

val fresh : t -> Fr.t -> wire
(** Allocate an unconstrained wire holding the given witness value. *)

val add_gate :
  t -> ql:Fr.t -> qr:Fr.t -> qo:Fr.t -> qm:Fr.t -> qc:Fr.t ->
  wire -> wire -> wire -> unit
(** Emit a raw gate over wires (a, b, c). *)

val public_input : t -> Fr.t -> wire
(** Declare a public input. All public inputs must be declared before any
    gate is added; raises [Invalid_argument] otherwise. *)

val zero_wire : t -> wire
(** A shared filler wire for unused gate slots (always multiplied by a
    zero selector). *)

val constant : t -> Fr.t -> wire
(** A wire constrained to a constant; cached per value. *)

(** {2 Arithmetic helpers} — each allocates the output wire + one gate. *)

val add : t -> wire -> wire -> wire
val sub : t -> wire -> wire -> wire
val mul : t -> wire -> wire -> wire

val affine : t -> sa:Fr.t -> wire -> sb:Fr.t -> wire -> const:Fr.t -> wire
(** [affine cs ~sa a ~sb b ~const] = [sa*a + sb*b + const]. *)

val scale : t -> Fr.t -> wire -> wire
val add_const : t -> wire -> Fr.t -> wire

(** {2 Assertions} — gates with no output wire. *)

val assert_equal : t -> wire -> wire -> unit
val assert_zero : t -> wire -> unit
val assert_constant : t -> wire -> Fr.t -> unit
val assert_mul : t -> wire -> wire -> wire -> unit
val assert_boolean : t -> wire -> unit

(** {2 Compilation} *)

type compiled = {
  gates_arr : gate array;  (** public-input rows first *)
  n_public : int;
  n_vars : int;
  witness : Fr.t array;
  public_values : Fr.t array;
}

val compile : t -> compiled

val num_gates : compiled -> int
(** Constraint rows before power-of-two padding. *)

val satisfied : compiled -> bool
(** Direct witness check of every gate equation (cheap prover
    precondition and test oracle). *)
