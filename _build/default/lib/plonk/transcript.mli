(** Fiat–Shamir transcript: domain-separated SHA-256 chaining, shared
    byte-for-byte by prover and verifier. *)

module Fr = Zkdet_field.Bn254.Fr

type t

val create : label:string -> t
val absorb_bytes : t -> label:string -> string -> unit
val absorb_fr : t -> label:string -> Fr.t -> unit
val absorb_g1 : t -> label:string -> Zkdet_curve.G1.t -> unit

val challenge_fr : t -> label:string -> Fr.t
(** Squeeze a field challenge; mutates the state so later challenges
    depend on everything absorbed before them. *)
