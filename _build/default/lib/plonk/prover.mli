(** The Plonk prover (Gabizon–Williamson–Ciobotaru 2019): 5 rounds, with
    the quotient computed on a coset of the 4n domain and zero-knowledge
    blinding on the wire and permutation polynomials. *)

module Fr = Zkdet_field.Bn254.Fr

val absorb_vk_and_publics :
  Transcript.t -> Preprocess.verification_key -> Fr.t array -> unit
(** Shared transcript prefix (also used by the verifier). *)

val prove :
  ?st:Random.State.t -> Preprocess.proving_key -> Cs.compiled -> Proof.t
(** Generate a proof for a satisfied circuit. Raises [Invalid_argument]
    when the witness does not satisfy the constraint system — proving an
    invalid witness is always a caller bug. *)
