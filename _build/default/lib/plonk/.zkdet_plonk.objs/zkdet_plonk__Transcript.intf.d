lib/plonk/transcript.mli: Zkdet_curve Zkdet_field
