lib/plonk/prover.mli: Cs Preprocess Proof Random Transcript Zkdet_field
