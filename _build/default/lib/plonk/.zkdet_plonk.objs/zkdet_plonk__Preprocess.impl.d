lib/plonk/preprocess.ml: Array Cs Zkdet_curve Zkdet_field Zkdet_kzg Zkdet_poly
