lib/plonk/transcript.ml: Zkdet_curve Zkdet_field Zkdet_hash
