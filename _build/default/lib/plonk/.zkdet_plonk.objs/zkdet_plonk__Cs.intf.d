lib/plonk/cs.mli: Zkdet_field
