lib/plonk/proof.mli: Zkdet_curve Zkdet_field
