lib/plonk/verifier.ml: Array List Preprocess Proof Prover Random Transcript Zkdet_curve Zkdet_field Zkdet_poly
