lib/plonk/preprocess.mli: Cs Zkdet_curve Zkdet_field Zkdet_kzg Zkdet_poly
