lib/plonk/cs.ml: Array Hashtbl List Zkdet_field
