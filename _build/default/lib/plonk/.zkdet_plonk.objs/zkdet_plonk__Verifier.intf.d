lib/plonk/verifier.mli: Preprocess Proof Random Zkdet_curve Zkdet_field
