lib/plonk/prover.ml: Array Cs List Preprocess Proof Random Transcript Zkdet_curve Zkdet_field Zkdet_kzg Zkdet_poly
