lib/plonk/proof.ml: List String Zkdet_curve Zkdet_field
