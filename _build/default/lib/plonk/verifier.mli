(** Plonk verifier: O(1) work — a fixed number of scalar multiplications
    and exactly 2 pairings, independent of circuit size (§VI-B.3). *)

module Fr = Zkdet_field.Bn254.Fr
module G1 = Zkdet_curve.G1

val prepare :
  Preprocess.verification_key -> Fr.t array -> Proof.t -> (G1.t * G1.t) option
(** Reduce verification to one pairing equation: the proof is valid iff
    [e(L, [tau]G2) = e(R, G2)] for the returned [(L, R)]. [None] signals
    a structural rejection (e.g. wrong public-input count). *)

val verify : Preprocess.verification_key -> Fr.t array -> Proof.t -> bool

val verify_batch :
  ?st:Random.State.t ->
  (Preprocess.verification_key * Fr.t array * Proof.t) list ->
  bool
(** Verify many proofs (possibly for different circuits over the same
    SRS) with a single pairing check via a random linear combination.
    Soundness error 1/|Fr| per batch. *)
