(* Plonk constraint system: rows of
     qL*a + qR*b + qO*c + qM*a*b + qC + PI = 0
   over three wire columns with copy constraints expressed by wires sharing
   variables. The builder carries concrete values, so one synthesis pass
   yields both the circuit structure (for preprocessing/verification) and
   the witness (for proving). Synthesis must be data-independent: gadget
   control flow may not branch on witness values. *)

module Fr = Zkdet_field.Bn254.Fr

type wire = int

type gate = {
  ql : Fr.t;
  qr : Fr.t;
  qo : Fr.t;
  qm : Fr.t;
  qc : Fr.t;
  a : wire;
  b : wire;
  c : wire;
}

type t = {
  mutable gates : gate list; (* reversed during construction *)
  mutable ngates : int;
  mutable values : Fr.t array;
  mutable nvars : int;
  mutable publics : wire list; (* reversed *)
  mutable npublic : int;
  mutable sealed_publics : bool;
  constants : (string, wire) Hashtbl.t;
}

let create () =
  let cs =
    {
      gates = [];
      ngates = 0;
      values = Array.make 64 Fr.zero;
      nvars = 0;
      publics = [];
      npublic = 0;
      sealed_publics = false;
      constants = Hashtbl.create 16;
    }
  in
  cs

let value (cs : t) (w : wire) = cs.values.(w)

let fresh (cs : t) (v : Fr.t) : wire =
  if cs.nvars = Array.length cs.values then begin
    let bigger = Array.make (2 * cs.nvars) Fr.zero in
    Array.blit cs.values 0 bigger 0 cs.nvars;
    cs.values <- bigger
  end;
  let w = cs.nvars in
  cs.values.(w) <- v;
  cs.nvars <- w + 1;
  w

let add_gate cs ~ql ~qr ~qo ~qm ~qc a b c =
  cs.sealed_publics <- true;
  cs.gates <- { ql; qr; qo; qm; qc; a; b; c } :: cs.gates;
  cs.ngates <- cs.ngates + 1

(** Declare a public input. All public inputs must be declared before any
    gate is added (they occupy the first rows of the trace). *)
let public_input (cs : t) (v : Fr.t) : wire =
  if cs.sealed_publics then
    invalid_arg "Cs.public_input: declare public inputs before adding gates";
  let w = fresh cs v in
  cs.publics <- w :: cs.publics;
  cs.npublic <- cs.npublic + 1;
  w

let zero_wire (cs : t) : wire =
  match Hashtbl.find_opt cs.constants "zero" with
  | Some w -> w
  | None ->
    let w = fresh cs Fr.zero in
    Hashtbl.add cs.constants "zero" w;
    w

(** A wire constrained to the constant [v]. Cached per value. *)
let constant (cs : t) (v : Fr.t) : wire =
  let key = Fr.to_bytes_be v in
  match Hashtbl.find_opt cs.constants key with
  | Some w -> w
  | None ->
    let w = fresh cs v in
    let z = zero_wire cs in
    add_gate cs ~ql:Fr.one ~qr:Fr.zero ~qo:Fr.zero ~qm:Fr.zero ~qc:(Fr.neg v) w z z;
    Hashtbl.add cs.constants key w;
    w

(* ---- arithmetic helpers: each creates the output wire and one gate ---- *)

let add cs a b =
  let c = fresh cs (Fr.add (value cs a) (value cs b)) in
  (* a + b - c = 0 *)
  add_gate cs ~ql:Fr.one ~qr:Fr.one ~qo:(Fr.neg Fr.one) ~qm:Fr.zero ~qc:Fr.zero a b c;
  c

let sub cs a b =
  let c = fresh cs (Fr.sub (value cs a) (value cs b)) in
  add_gate cs ~ql:Fr.one ~qr:(Fr.neg Fr.one) ~qo:(Fr.neg Fr.one) ~qm:Fr.zero
    ~qc:Fr.zero a b c;
  c

let mul cs a b =
  let c = fresh cs (Fr.mul (value cs a) (value cs b)) in
  (* a*b - c = 0 *)
  add_gate cs ~ql:Fr.zero ~qr:Fr.zero ~qo:(Fr.neg Fr.one) ~qm:Fr.one ~qc:Fr.zero a b c;
  c

(** [affine cs ~sa a ~sb b ~const] is the wire [sa*a + sb*b + const]. *)
let affine cs ~sa a ~sb b ~const =
  let v = Fr.add (Fr.add (Fr.mul sa (value cs a)) (Fr.mul sb (value cs b))) const in
  let c = fresh cs v in
  add_gate cs ~ql:sa ~qr:sb ~qo:(Fr.neg Fr.one) ~qm:Fr.zero ~qc:const a b c;
  c

let scale cs s a = affine cs ~sa:s a ~sb:Fr.zero a ~const:Fr.zero
let add_const cs a k = affine cs ~sa:Fr.one a ~sb:Fr.zero a ~const:k

(* ---- assertions (gates with no output wire) ---- *)

let assert_equal cs a b =
  add_gate cs ~ql:Fr.one ~qr:(Fr.neg Fr.one) ~qo:Fr.zero ~qm:Fr.zero ~qc:Fr.zero a b
    (zero_wire cs)

let assert_zero cs a =
  add_gate cs ~ql:Fr.one ~qr:Fr.zero ~qo:Fr.zero ~qm:Fr.zero ~qc:Fr.zero a
    (zero_wire cs) (zero_wire cs)

let assert_constant cs a v =
  add_gate cs ~ql:Fr.one ~qr:Fr.zero ~qo:Fr.zero ~qm:Fr.zero ~qc:(Fr.neg v) a
    (zero_wire cs) (zero_wire cs)

(** Constrain [a * b = c] for existing wires. *)
let assert_mul cs a b c =
  add_gate cs ~ql:Fr.zero ~qr:Fr.zero ~qo:(Fr.neg Fr.one) ~qm:Fr.one ~qc:Fr.zero a b c

let assert_boolean cs a =
  (* a*a - a = 0 *)
  add_gate cs ~ql:(Fr.neg Fr.one) ~qr:Fr.zero ~qo:Fr.zero ~qm:Fr.one ~qc:Fr.zero a a
    (zero_wire cs)

(* ---- finalized view ---- *)

type compiled = {
  gates_arr : gate array; (* public-input rows first *)
  n_public : int;
  n_vars : int;
  witness : Fr.t array;
  public_values : Fr.t array;
}

(** Freeze the builder. Public-input rows (qL = 1, wire = the input) are
    prepended; the gate equation for them is balanced by the PI polynomial. *)
let compile (cs : t) : compiled =
  let publics = List.rev cs.publics in
  let z = zero_wire cs in
  let pub_gates =
    List.map
      (fun w ->
        { ql = Fr.one; qr = Fr.zero; qo = Fr.zero; qm = Fr.zero; qc = Fr.zero;
          a = w; b = z; c = z })
      publics
  in
  let gates_arr = Array.of_list (pub_gates @ List.rev cs.gates) in
  {
    gates_arr;
    n_public = cs.npublic;
    n_vars = cs.nvars;
    witness = Array.sub cs.values 0 cs.nvars;
    public_values = Array.of_list (List.map (fun w -> cs.values.(w)) publics);
  }

(** Number of constraint rows (before padding), including public rows. *)
let num_gates (c : compiled) = Array.length c.gates_arr

(** Direct witness check: every gate equation holds on the assigned values.
    Used by tests and by the prover as a cheap precondition. *)
let satisfied (c : compiled) : bool =
  let ok = ref true in
  Array.iteri
    (fun i g ->
      let a = c.witness.(g.a) and b = c.witness.(g.b) and cc = c.witness.(g.c) in
      let pi = if i < c.n_public then Fr.neg c.public_values.(i) else Fr.zero in
      let v =
        Fr.add
          (Fr.add
             (Fr.add (Fr.mul g.ql a) (Fr.mul g.qr b))
             (Fr.add (Fr.mul g.qo cc) (Fr.mul g.qm (Fr.mul a b))))
          (Fr.add g.qc pi)
      in
      if not (Fr.is_zero v) then ok := false)
    c.gates_arr;
  !ok
