(** Client-side FairSwap protocol (the ADS-based baseline of the paper's
    §VII): block-wise encryption, Merkle commitments over ciphertext and
    plaintext, and proof-of-misbehavior construction. Cheap when both
    parties are honest; dispute cost grows with the data size and — like
    ZKCP — the key is revealed on-chain. *)

module Fr = Zkdet_field.Bn254.Fr
module Merkle = Zkdet_circuit.Merkle
module Fairswap_escrow = Zkdet_contracts.Fairswap_escrow

type seller_state = {
  data : Fr.t array;
  key : Fr.t;
  depth : int;
  ciphertext : Fr.t array;  (** c_i = d_i + E_k(i), published *)
  ciphertext_tree : Merkle.tree;
  plaintext_tree : Merkle.tree;
}

val seller_prepare : ?st:Random.State.t -> Fr.t array -> seller_state
(** Encrypt block-wise and commit to both sides. *)

val roots : seller_state -> Fr.t * Fr.t
(** (ciphertext root, plaintext root) — the lock parameters. *)

val seller_cheat :
  ?st:Random.State.t -> Fr.t array -> Fr.t array -> seller_state
(** [seller_cheat advertised actual]: commit the ciphertext of [actual]
    while advertising the Merkle root of [advertised]. *)

val buyer_check :
  key:Fr.t -> ciphertext:Fr.t array -> ciphertext_tree:Merkle.tree ->
  advertised_tree:Merkle.tree ->
  Fairswap_escrow.misbehavior_proof option
(** Decrypt with the revealed key; return a proof of misbehavior for the
    first block contradicting the advertised root, or [None] if the
    delivery is consistent. *)

val decrypt : key:Fr.t -> Fr.t array -> Fr.t array
