lib/core/zkcp.mli: Circuits Env Transform Zkdet_field Zkdet_plonk
