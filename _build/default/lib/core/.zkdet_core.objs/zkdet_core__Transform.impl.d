lib/core/transform.ml: Array Circuits Env Hashtbl List Random Zkdet_field Zkdet_mimc Zkdet_plonk
