lib/core/zkcp.ml: Array Circuits Env List Printf Transform Zkdet_circuit Zkdet_field Zkdet_mimc Zkdet_plonk Zkdet_poseidon
