lib/core/transform.mli: Circuits Env Random Zkdet_field Zkdet_plonk
