lib/core/circuits.ml: Array Hashtbl List Printf String Zkdet_circuit Zkdet_field Zkdet_mimc Zkdet_plonk Zkdet_poseidon
