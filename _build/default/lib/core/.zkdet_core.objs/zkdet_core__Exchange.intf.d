lib/core/exchange.mli: Circuits Env Random Transform Zkdet_field Zkdet_plonk
