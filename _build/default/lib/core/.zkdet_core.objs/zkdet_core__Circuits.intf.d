lib/core/circuits.mli: Zkdet_field Zkdet_plonk
