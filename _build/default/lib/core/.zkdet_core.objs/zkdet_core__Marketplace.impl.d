lib/core/marketplace.ml: Array Circuits Env Exchange Hashtbl List Logs Option String Transform Zkdet_chain Zkdet_contracts Zkdet_field Zkdet_plonk Zkdet_storage
