lib/core/fairswap.ml: Array Random Zkdet_circuit Zkdet_contracts Zkdet_field Zkdet_mimc
