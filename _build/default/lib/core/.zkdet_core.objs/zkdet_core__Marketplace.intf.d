lib/core/marketplace.mli: Circuits Env Transform Zkdet_chain Zkdet_contracts Zkdet_field Zkdet_storage
