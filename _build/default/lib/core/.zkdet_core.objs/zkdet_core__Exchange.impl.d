lib/core/exchange.ml: Array Circuits Env Random Transform Zkdet_field Zkdet_mimc Zkdet_plonk Zkdet_poseidon
