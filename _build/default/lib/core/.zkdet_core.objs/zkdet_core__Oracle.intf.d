lib/core/oracle.mli: Random Zkdet_curve Zkdet_field
