lib/core/env.mli: Hashtbl Random Zkdet_kzg Zkdet_plonk
