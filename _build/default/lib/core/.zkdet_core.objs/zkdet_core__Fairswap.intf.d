lib/core/fairswap.mli: Random Zkdet_circuit Zkdet_contracts Zkdet_field
