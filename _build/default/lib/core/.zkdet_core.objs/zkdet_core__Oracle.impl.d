lib/core/oracle.ml: Hashtbl List Random Zkdet_curve Zkdet_field Zkdet_hash
