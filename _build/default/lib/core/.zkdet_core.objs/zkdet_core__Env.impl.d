lib/core/env.ml: Hashtbl Random Zkdet_kzg Zkdet_plonk
