(** The key-secure two-phase data exchange protocol (paper §IV-F, Fig. 4).

    Phase 1 (data validation): the seller sends (c_d, pi_p) proving the
    publicly stored ciphertext encrypts a dataset satisfying phi under a
    committed key; the buyer verifies, samples a blinding key k_v, sends
    it to the seller off-chain, and locks payment at the arbiter with
    h_v = H(k_v).

    Phase 2 (key negotiation): the seller publishes k_c = k + k_v with
    pi_k; the arbiter verifies and releases payment; the buyer recovers
    k = k_c - k_v and decrypts. The key k itself never appears on-chain —
    the property classic ZKCP lacks. *)

module Fr = Zkdet_field.Bn254.Fr
module Proof = Zkdet_plonk.Proof
module Preprocess = Zkdet_plonk.Preprocess

(** What the seller advertises; everything here is public. *)
type offer = {
  nonce : Fr.t;
  ciphertext : Fr.t array;
  c_d : Fr.t;
  c_k : Fr.t;
  predicate : Circuits.predicate;
  price : int;
}

val make_offer :
  Transform.sealed -> predicate:Circuits.predicate -> price:int -> offer

(** {2 Phase 1: data validation} *)

val prove_validation :
  Env.t -> Transform.sealed -> Circuits.predicate -> Proof.t
(** The seller's pi_p:
    [phi(D) = 1 /\ D_hat = Enc(k, D) /\ Open(D, c_d, o_d) = 1]. *)

val verify_validation : Env.t -> offer -> Proof.t -> bool

val buyer_blinding : ?st:Random.State.t -> unit -> Fr.t * Fr.t
(** Sample (k_v, h_v = H(k_v)); k_v stays with the buyer, h_v goes into
    the escrow lock. *)

(** {2 Phase 2: key negotiation} *)

val key_vk : Env.t -> Preprocess.verification_key
(** The pi_k verification key — what the on-chain verifier contract is
    deployed with. *)

val prove_key : Env.t -> Transform.sealed -> k_v:Fr.t -> Fr.t * Proof.t
(** The seller derives k_c = k + k_v and proves
    [Open(k, c, o) = 1 /\ h_v = H(k_v) /\ k_c = k + k_v]. *)

val verify_key : Env.t -> k_c:Fr.t -> c_k:Fr.t -> h_v:Fr.t -> Proof.t -> bool
(** The arbiter-side check (also run inside the escrow contract). *)

val recover : offer -> k_c:Fr.t -> k_v:Fr.t -> Fr.t array
(** Buyer-side key recovery and decryption after settlement. *)

val recovered_matches : offer -> k_c:Fr.t -> k_v:Fr.t -> Fr.t array -> bool
(** Check that a recovered plaintext re-encrypts to the public
    ciphertext under the recovered key. *)
