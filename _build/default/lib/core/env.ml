(* Shared proving environment: one universal SRS (from the simulated
   ceremony or a local trusted setup) plus a cache of circuit-specific
   proving keys, keyed by a structural descriptor. Because Plonk's setup is
   universal (§VI-B.1), the SRS is generated once and every circuit below
   its size bound reuses it. *)

module Srs = Zkdet_kzg.Srs
module Preprocess = Zkdet_plonk.Preprocess
module Cs = Zkdet_plonk.Cs

type t = {
  srs : Srs.t;
  pk_cache : (string, Preprocess.proving_key) Hashtbl.t;
  rng : Random.State.t;
}

(** [create ~log2_max_gates ()] runs the (simulated) universal setup for
    circuits of up to [2^log2_max_gates] constraints. *)
let create ?(log2_max_gates = 12) ?(seed = [| 0xd47a |]) () =
  let rng = Random.State.make seed in
  let srs = Srs.unsafe_generate ~st:rng ~size:((1 lsl log2_max_gates) + 8) () in
  { srs; pk_cache = Hashtbl.create 16; rng }

(** [proving_key env ~descriptor ~build] returns the cached proving key
    for the circuit family identified by [descriptor], running [build]
    (with representative dummy inputs) and preprocessing on a miss. *)
let proving_key (env : t) ~(descriptor : string) ~(build : unit -> Cs.t) :
    Preprocess.proving_key =
  match Hashtbl.find_opt env.pk_cache descriptor with
  | Some pk -> pk
  | None ->
    let compiled = Cs.compile (build ()) in
    let pk = Preprocess.setup env.srs compiled in
    Hashtbl.add env.pk_cache descriptor pk;
    pk

let verification_key (env : t) ~descriptor ~build =
  (proving_key env ~descriptor ~build).Preprocess.vk
