(** The protocol circuits of ZKDET (paper §IV): proofs of encryption
    pi_e, proofs of transformation pi_t for the four fundamental
    formulae, the data-validation proof pi_p and the key-negotiation
    proof pi_k.

    Public-input layouts are fixed per circuit family and mirrored by the
    [*_publics] helpers so prover and verifier agree byte-for-byte; the
    [*_descriptor] strings key the proving-key cache ({!Env}); the
    [*_dummy] builders synthesize representative circuits for setup. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs

(** {2 Dataset and key commitments} *)

val commit_dataset : Fr.t array -> Fr.t -> Fr.t
val commit_key : Fr.t -> Fr.t -> Fr.t

val assert_dataset_opens :
  Cs.t -> commitment:Cs.wire -> Cs.wire array -> opening:Cs.wire -> unit

(** {2 Public predicates phi (§III-C / §IV-F)} *)

type predicate =
  | Trivial  (** no condition beyond well-formedness *)
  | Entries_bounded of int  (** every entry fits in [n] bits *)
  | Sum_equals of Fr.t  (** the entries sum to a public value *)

val predicate_descriptor : predicate -> string
val predicate_publics : predicate -> Fr.t list
val assert_predicate : Cs.t -> predicate -> Cs.wire list -> Cs.wire array -> unit

(** {2 pi_e: proof of encryption}
    publics: [nonce :: c_d :: c_k :: ct_0 .. ct_(n-1)] *)

val encryption_publics :
  nonce:Fr.t -> c_d:Fr.t -> c_k:Fr.t -> ciphertext:Fr.t array -> Fr.t array

val encryption_descriptor : n:int -> string

val encryption_circuit :
  data:Fr.t array -> key:Fr.t -> nonce:Fr.t -> o_d:Fr.t -> o_k:Fr.t -> Cs.t

val encryption_dummy : n:int -> unit -> Cs.t

(** {2 pi_t: proofs of transformation (§IV-D)} *)

val duplication_descriptor : n:int -> string
val duplication_publics : c_s:Fr.t -> c_d:Fr.t -> Fr.t array
val duplication_circuit : src:Fr.t array * Fr.t -> dst:Fr.t array * Fr.t -> Cs.t
val duplication_dummy : n:int -> unit -> Cs.t

val aggregation_descriptor : sizes:int list -> string
val aggregation_publics : c_sources:Fr.t list -> c_d:Fr.t -> Fr.t array

val aggregation_circuit :
  sources:(Fr.t array * Fr.t) list -> dst:Fr.t array * Fr.t -> Cs.t

val aggregation_dummy : sizes:int list -> unit -> Cs.t

val partition_descriptor : n:int -> sizes:int list -> string
val partition_publics : c_s:Fr.t -> c_parts:Fr.t list -> Fr.t array

val partition_circuit :
  src:Fr.t array * Fr.t -> parts:(Fr.t array * Fr.t) list -> Cs.t

val partition_dummy : n:int -> sizes:int list -> unit -> Cs.t

(** {2 Processing (§IV-D.4, §IV-E)} *)

(** A registered, named data-processing relation. *)
type processing_spec = {
  proc_name : string;
  out_size : int -> int;
  check : Cs.t -> Cs.wire array -> Cs.wire array -> unit;
      (** constrains the relation between source and derived wires *)
  reference : Fr.t array -> Fr.t array;
      (** out-of-circuit semantics used by the data owner *)
}

val pure_spec :
  name:string ->
  out_size:(int -> int) ->
  apply:(Cs.t -> Cs.wire array -> Cs.wire array) ->
  reference:(Fr.t array -> Fr.t array) ->
  processing_spec
(** Spec for a pure function: the circuit recomputes D from S and
    equates. *)

val register_processing : processing_spec -> unit
(** Register globally so auditors can rebuild the circuit by name. *)

val find_processing : string -> processing_spec option

val processing_descriptor : name:string -> n:int -> string
val processing_publics : c_s:Fr.t -> c_d:Fr.t -> Fr.t array

val processing_circuit :
  spec:processing_spec -> src:Fr.t array * Fr.t -> dst:Fr.t array * Fr.t -> Cs.t

val processing_dummy : spec:processing_spec -> n:int -> unit -> Cs.t

val scale_spec : factor:int -> processing_spec
val sum_spec : processing_spec

(** {2 pi_p: data validation (§IV-F phase 1)}
    publics: [nonce :: c_d :: predicate params :: ct_0 .. ct_(n-1)] *)

val validation_descriptor : n:int -> predicate:predicate -> string

val validation_publics :
  nonce:Fr.t -> c_d:Fr.t -> predicate:predicate -> ciphertext:Fr.t array ->
  Fr.t array

val validation_circuit :
  data:Fr.t array -> key:Fr.t -> nonce:Fr.t -> o_d:Fr.t ->
  predicate:predicate -> Cs.t

val validation_dummy : n:int -> predicate:predicate -> unit -> Cs.t

(** {2 pi_k: key negotiation (§IV-F phase 2)}
    publics: [k_c; c_k; h_v] *)

val key_descriptor : string
val key_publics : k_c:Fr.t -> c_k:Fr.t -> h_v:Fr.t -> Fr.t array
val key_circuit : key:Fr.t -> o_k:Fr.t -> k_v:Fr.t -> Cs.t
val key_dummy : unit -> Cs.t
