(** Decentralized data-source oracles (DECO-style attestations the
    paper's §IV-F points to for grounding data provenance).

    An oracle signs a Schnorr binding between a source label and a
    dataset commitment; a registry of oracle keys lets auditors check
    that the roots of a provenance chain carry attestations from trusted
    sources. *)

module Fr = Zkdet_field.Bn254.Fr
module G1 = Zkdet_curve.G1

type keypair = { secret : Fr.t; public : G1.t }

val generate : ?st:Random.State.t -> unit -> keypair

type attestation = {
  source_label : string;
  commitment : Fr.t;  (** c_d of the attested dataset *)
  commit_point : G1.t;
  response : Fr.t;
}

val attest :
  ?st:Random.State.t -> keypair -> source_label:string -> commitment:Fr.t ->
  attestation

val verify_attestation : G1.t -> attestation -> bool

(** A registry of trusted oracles keyed by source label. *)
module Registry : sig
  type t

  val create : unit -> t
  val register : t -> source_label:string -> G1.t -> unit
  val check : t -> attestation -> bool

  val check_roots :
    t -> root_commitments:Fr.t list -> attestation list -> bool
  (** Every root commitment must carry a valid attestation from a
      registered oracle. *)
end
