(** The generic data transformation protocol (paper §IV-B): sealed
    datasets (encrypted + committed), decoupled reusable proofs of
    encryption pi_e, proofs of transformation pi_t for the four
    fundamental formulae of §IV-D, and proof-chain validation (Fig. 3). *)

module Fr = Zkdet_field.Bn254.Fr
module Proof = Zkdet_plonk.Proof

(** A dataset as its owner holds it: plaintext and secrets alongside the
    public ciphertext and commitments. Only [ciphertext], [c_d], [c_k]
    and [nonce] are ever published. *)
type sealed = {
  data : Fr.t array;
  key : Fr.t;
  nonce : Fr.t;
  o_d : Fr.t;  (** opening of the dataset commitment *)
  o_k : Fr.t;  (** opening of the key commitment *)
  ciphertext : Fr.t array;
  c_d : Fr.t;
  c_k : Fr.t;
}

val size : sealed -> int

val seal : ?st:Random.State.t -> Fr.t array -> sealed
(** Encrypt (MiMC-CTR) and commit (Poseidon) under fresh secrets. *)

val decrypt : key:Fr.t -> nonce:Fr.t -> Fr.t array -> Fr.t array

(** {2 Proof of encryption (pi_e)} *)

val prove_encryption : Env.t -> sealed -> Proof.t

val verify_encryption :
  Env.t -> nonce:Fr.t -> c_d:Fr.t -> c_k:Fr.t -> ciphertext:Fr.t array ->
  Proof.t -> bool
(** Verification from public data only. *)

(** {2 Transformations (pi_t)} *)

type kind =
  | Duplication
  | Aggregation of int list  (** source sizes, in order *)
  | Partition of int * int list  (** source size, part sizes *)
  | Processing of string * int  (** registered spec name, source size *)

val kind_name : kind -> string

(** One link of a proof chain: a transformation relating source
    commitments to destination commitments through pi_t. *)
type link = {
  kind : kind;
  src_commitments : Fr.t list;
  dst_commitments : Fr.t list;
  proof : Proof.t;
}

val duplicate : Env.t -> sealed -> sealed * link
(** Reseal the same content under fresh secrets; prove equality
    (§IV-D.1). *)

val aggregate : Env.t -> sealed list -> sealed * link
(** Ordered concatenation of several datasets (§IV-D.2). *)

val partition : Env.t -> sealed -> sizes:int list -> sealed list * link
(** Split into consecutive non-empty slices — exhaustive and mutually
    exclusive (§IV-D.3). Raises [Invalid_argument] unless the sizes sum
    to the source size. *)

val process : Env.t -> sealed -> spec:Circuits.processing_spec -> sealed * link
(** Apply a registered processing function and prove D = f(S) or the
    spec's relational predicate (§IV-D.4, §IV-E). *)

(** {2 Verification} *)

val verify_link : Env.t -> ?n_duplication:int -> link -> bool
(** Verify one pi_t against its public commitments. Duplication circuits
    are keyed by the dataset size, which the link does not carry — pass
    it as [n_duplication] (token metadata supplies it). *)

val verify_chain :
  Env.t -> roots:Fr.t list -> ?dup_sizes:int list -> link list -> bool
(** Verify a chain of transformations (Fig. 3): every link verifies and
    every link's sources are either trusted [roots] or destinations of
    earlier links. *)
