(* The generic data transformation protocol (paper §IV-B): sealed datasets
   (encrypted + committed), decoupled proofs of encryption pi_e reusable
   across transformations, proofs of transformation pi_t for the four
   fundamental formulae, and proof-chain validation (Fig. 3). *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Prover = Zkdet_plonk.Prover
module Verifier = Zkdet_plonk.Verifier
module Proof = Zkdet_plonk.Proof
module Preprocess = Zkdet_plonk.Preprocess
module Mimc = Zkdet_mimc.Mimc

(** A dataset as its owner holds it: plaintext and secrets alongside the
    public ciphertext and commitments. *)
type sealed = {
  data : Fr.t array;
  key : Fr.t;
  nonce : Fr.t;
  o_d : Fr.t; (* opening of the dataset commitment *)
  o_k : Fr.t; (* opening of the key commitment *)
  ciphertext : Fr.t array;
  c_d : Fr.t;
  c_k : Fr.t;
}

let size (s : sealed) = Array.length s.data

(** Encrypt and commit a plaintext dataset with fresh secrets. *)
let seal ?(st = Random.State.make_self_init ()) (data : Fr.t array) : sealed =
  let key = Fr.random st in
  let nonce = Fr.random st in
  let o_d = Fr.random st in
  let o_k = Fr.random st in
  {
    data;
    key;
    nonce;
    o_d;
    o_k;
    ciphertext = Mimc.Ctr.encrypt ~key ~nonce data;
    c_d = Circuits.commit_dataset data o_d;
    c_k = Circuits.commit_key key o_k;
  }

let decrypt ~(key : Fr.t) ~(nonce : Fr.t) (ciphertext : Fr.t array) : Fr.t array
    =
  Mimc.Ctr.decrypt ~key ~nonce ciphertext

(* ---- pi_e ---- *)

let encryption_pk env ~n =
  Env.proving_key env ~descriptor:(Circuits.encryption_descriptor ~n)
    ~build:(Circuits.encryption_dummy ~n)

(** Generate pi_e for a sealed dataset. *)
let prove_encryption (env : Env.t) (s : sealed) : Proof.t =
  let pk = encryption_pk env ~n:(size s) in
  let cs =
    Circuits.encryption_circuit ~data:s.data ~key:s.key ~nonce:s.nonce
      ~o_d:s.o_d ~o_k:s.o_k
  in
  Prover.prove ~st:env.Env.rng pk (Cs.compile cs)

(** Verify pi_e from public data only. *)
let verify_encryption (env : Env.t) ~(nonce : Fr.t) ~(c_d : Fr.t) ~(c_k : Fr.t)
    ~(ciphertext : Fr.t array) (proof : Proof.t) : bool =
  let n = Array.length ciphertext in
  let pk = encryption_pk env ~n in
  Verifier.verify pk.Preprocess.vk
    (Circuits.encryption_publics ~nonce ~c_d ~c_k ~ciphertext)
    proof

(* ---- transformations ---- *)

type kind =
  | Duplication
  | Aggregation of int list (* source sizes in order *)
  | Partition of int * int list (* source size, part sizes *)
  | Processing of string * int (* registered spec name, source size *)

let kind_name = function
  | Duplication -> "duplication"
  | Aggregation _ -> "aggregation"
  | Partition _ -> "partition"
  | Processing (name, _) -> "processing:" ^ name

(** One link of a proof chain: the transformation relates source
    commitments to destination commitments through pi_t. *)
type link = {
  kind : kind;
  src_commitments : Fr.t list;
  dst_commitments : Fr.t list;
  proof : Proof.t;
}

(** Duplicate: reseal the same content under fresh secrets and prove
    content equality (§IV-D.1). *)
let duplicate (env : Env.t) (src : sealed) : sealed * link =
  let st = env.Env.rng in
  let dst = seal ~st (Array.copy src.data) in
  let n = size src in
  let pk =
    Env.proving_key env ~descriptor:(Circuits.duplication_descriptor ~n)
      ~build:(Circuits.duplication_dummy ~n)
  in
  let cs =
    Circuits.duplication_circuit ~src:(src.data, src.o_d) ~dst:(dst.data, dst.o_d)
  in
  let proof = Prover.prove ~st pk (Cs.compile cs) in
  ( dst,
    { kind = Duplication; src_commitments = [ src.c_d ];
      dst_commitments = [ dst.c_d ]; proof } )

(** Aggregate several datasets into their ordered concatenation (§IV-D.2). *)
let aggregate (env : Env.t) (sources : sealed list) : sealed * link =
  let st = env.Env.rng in
  let data = Array.concat (List.map (fun s -> s.data) sources) in
  let dst = seal ~st data in
  let sizes = List.map size sources in
  let pk =
    Env.proving_key env ~descriptor:(Circuits.aggregation_descriptor ~sizes)
      ~build:(Circuits.aggregation_dummy ~sizes)
  in
  let cs =
    Circuits.aggregation_circuit
      ~sources:(List.map (fun s -> (s.data, s.o_d)) sources)
      ~dst:(dst.data, dst.o_d)
  in
  let proof = Prover.prove ~st pk (Cs.compile cs) in
  ( dst,
    { kind = Aggregation sizes;
      src_commitments = List.map (fun s -> s.c_d) sources;
      dst_commitments = [ dst.c_d ]; proof } )

(** Partition a dataset into consecutive slices of the given sizes
    (§IV-D.3: exhaustive and mutually exclusive). *)
let partition (env : Env.t) (src : sealed) ~(sizes : int list) :
    sealed list * link =
  let st = env.Env.rng in
  if List.fold_left ( + ) 0 sizes <> size src then
    invalid_arg "Transform.partition: sizes must sum to the source size";
  let parts =
    let off = ref 0 in
    List.map
      (fun k ->
        let slice = Array.sub src.data !off k in
        off := !off + k;
        seal ~st slice)
      sizes
  in
  let n = size src in
  let pk =
    Env.proving_key env ~descriptor:(Circuits.partition_descriptor ~n ~sizes)
      ~build:(Circuits.partition_dummy ~n ~sizes)
  in
  let cs =
    Circuits.partition_circuit ~src:(src.data, src.o_d)
      ~parts:(List.map (fun p -> (p.data, p.o_d)) parts)
  in
  let proof = Prover.prove ~st pk (Cs.compile cs) in
  ( parts,
    { kind = Partition (n, sizes); src_commitments = [ src.c_d ];
      dst_commitments = List.map (fun p -> p.c_d) parts; proof } )

(** Apply a registered processing function and prove D = f(S) (§IV-D.4). *)
let process (env : Env.t) (src : sealed) ~(spec : Circuits.processing_spec) :
    sealed * link =
  let st = env.Env.rng in
  let data = spec.Circuits.reference src.data in
  let dst = seal ~st data in
  let n = size src in
  let pk =
    Env.proving_key env
      ~descriptor:(Circuits.processing_descriptor ~name:spec.Circuits.proc_name ~n)
      ~build:(Circuits.processing_dummy ~spec ~n)
  in
  let cs =
    Circuits.processing_circuit ~spec ~src:(src.data, src.o_d)
      ~dst:(dst.data, dst.o_d)
  in
  let proof = Prover.prove ~st pk (Cs.compile cs) in
  ( dst,
    { kind = Processing (spec.Circuits.proc_name, n);
      src_commitments = [ src.c_d ]; dst_commitments = [ dst.c_d ]; proof } )

(* ---- verification ---- *)

(** Verify one pi_t link against its public commitments. Duplication
    circuits are keyed by the dataset size, which the link itself does not
    carry — pass it as [n_duplication] (token metadata supplies it). *)
let verify_link (env : Env.t) ?(n_duplication = 0) (l : link) : bool =
  let vk_and_publics =
    match (l.kind, l.src_commitments, l.dst_commitments) with
    | Duplication, [ c_s ], [ c_d ] ->
      let n = n_duplication in
      if n <= 0 then None
      else
        Some
          ( Env.verification_key env
              ~descriptor:(Circuits.duplication_descriptor ~n)
              ~build:(Circuits.duplication_dummy ~n),
            Circuits.duplication_publics ~c_s ~c_d )
    | Aggregation sizes, c_sources, [ c_d ] ->
      Some
        ( Env.verification_key env
            ~descriptor:(Circuits.aggregation_descriptor ~sizes)
            ~build:(Circuits.aggregation_dummy ~sizes),
          Circuits.aggregation_publics ~c_sources ~c_d )
    | Partition (n, sizes), [ c_s ], c_parts ->
      Some
        ( Env.verification_key env
            ~descriptor:(Circuits.partition_descriptor ~n ~sizes)
            ~build:(Circuits.partition_dummy ~n ~sizes),
          Circuits.partition_publics ~c_s ~c_parts )
    | Processing (name, n), [ c_s ], [ c_d ] -> (
      match Circuits.find_processing name with
      | None -> None
      | Some spec ->
        Some
          ( Env.verification_key env
              ~descriptor:(Circuits.processing_descriptor ~name ~n)
              ~build:(Circuits.processing_dummy ~spec ~n),
            Circuits.processing_publics ~c_s ~c_d ))
    | _ -> None
  in
  match vk_and_publics with
  | None -> false
  | Some (vk, publics) -> Verifier.verify vk publics l.proof

(** Verify a chain of transformations (Fig. 3): every link's proof holds
    and each link's sources appear among the accumulated commitments
    (original sources or earlier destinations). [roots] are the trusted
    origin commitments; [dup_sizes] supplies n for duplication links (in
    chain order). *)
let verify_chain (env : Env.t) ~(roots : Fr.t list) ?(dup_sizes : int list = [])
    (chain : link list) : bool =
  let known = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace known (Fr.to_bytes_be c) ()) roots;
  let dup_sizes = ref dup_sizes in
  let take_dup_size () =
    match !dup_sizes with
    | [] -> 0
    | s :: rest ->
      dup_sizes := rest;
      s
  in
  List.for_all
    (fun l ->
      let sources_known =
        List.for_all
          (fun c -> Hashtbl.mem known (Fr.to_bytes_be c))
          l.src_commitments
      in
      let n_duplication =
        match l.kind with Duplication -> take_dup_size () | _ -> 0
      in
      let ok = sources_known && verify_link env ~n_duplication l in
      if ok then
        List.iter
          (fun c -> Hashtbl.replace known (Fr.to_bytes_be c) ())
          l.dst_commitments;
      ok)
    chain
