(** Shared proving environment: one universal SRS plus a cache of
    circuit-specific proving keys keyed by structural descriptors.
    Plonk's setup is universal (§VI-B.1): the SRS is generated once and
    every circuit below its size bound reuses it. *)

module Srs = Zkdet_kzg.Srs
module Preprocess = Zkdet_plonk.Preprocess
module Cs = Zkdet_plonk.Cs

type t = {
  srs : Srs.t;
  pk_cache : (string, Preprocess.proving_key) Hashtbl.t;
  rng : Random.State.t;
}

val create : ?log2_max_gates:int -> ?seed:int array -> unit -> t
(** Run the (simulated) universal setup for circuits of up to
    [2^log2_max_gates] constraints (default 2^12). *)

val proving_key :
  t -> descriptor:string -> build:(unit -> Cs.t) -> Preprocess.proving_key
(** Cached proving key for the circuit family named by [descriptor];
    [build] synthesizes the circuit with representative dummy inputs on a
    cache miss. *)

val verification_key :
  t -> descriptor:string -> build:(unit -> Cs.t) -> Preprocess.verification_key
