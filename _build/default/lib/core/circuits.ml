(* The protocol circuits of ZKDET (paper §IV): proofs of encryption pi_e,
   proofs of transformation pi_t for the four fundamental formulae, the
   data-validation proof pi_p, and the key-negotiation proof pi_k.

   Public-input layouts are fixed per circuit family and mirrored by the
   [*_publics] helpers so prover and verifier agree byte-for-byte. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Gadgets = Zkdet_circuit.Gadgets
module Mimc_gadget = Zkdet_circuit.Mimc_gadget
module Poseidon_gadget = Zkdet_circuit.Poseidon_gadget
module Mimc = Zkdet_mimc.Mimc
module Poseidon = Zkdet_poseidon.Poseidon

(* ---- dataset commitments (out-of-circuit side) ---- *)

let commit_dataset (data : Fr.t array) (o : Fr.t) : Fr.t =
  Poseidon.Commitment.commit_with (Array.to_list data) o

let commit_key (key : Fr.t) (o : Fr.t) : Fr.t =
  Poseidon.Commitment.commit_with [ key ] o

(* In-circuit commitment opening for a dataset of wires. *)
let assert_dataset_opens cs ~commitment (data : Cs.wire array) ~opening =
  Poseidon_gadget.assert_commitment_opens cs ~commitment
    (Array.to_list data) ~opening

(* ---- public predicates phi (paper §III-C / §IV-F) ---- *)

type predicate =
  | Trivial  (** no condition beyond well-formedness *)
  | Entries_bounded of int  (** every entry fits in [n] bits *)
  | Sum_equals of Fr.t  (** dataset entries sum to a public value *)

let predicate_descriptor = function
  | Trivial -> "trivial"
  | Entries_bounded n -> Printf.sprintf "bounded:%d" n
  | Sum_equals _ -> "sum"

(** Public inputs contributed by the predicate (value parameters only;
    structural parameters live in the descriptor). *)
let predicate_publics = function
  | Trivial | Entries_bounded _ -> []
  | Sum_equals s -> [ s ]

let assert_predicate cs (p : predicate) (pred_publics : Cs.wire list)
    (data : Cs.wire array) : unit =
  match (p, pred_publics) with
  | Trivial, [] -> ()
  | Entries_bounded nbits, [] ->
    Array.iter (fun w -> Gadgets.range_check cs w ~nbits) data
  | Sum_equals _, [ s ] ->
    let total = Gadgets.sum cs (Array.to_list data) in
    Cs.assert_equal cs total s
  | _ -> invalid_arg "Circuits.assert_predicate: publics mismatch"

(* ---- pi_e: proof of encryption (§IV-B step 1/3) ----
   publics: nonce :: c_d :: c_k :: ct_0 .. ct_{n-1}
   witness: data, o_d, key, o_k *)

let encryption_publics ~(nonce : Fr.t) ~(c_d : Fr.t) ~(c_k : Fr.t)
    ~(ciphertext : Fr.t array) : Fr.t array =
  Array.append [| nonce; c_d; c_k |] ciphertext

let encryption_descriptor ~n = Printf.sprintf "pi_e:%d" n

let encryption_circuit ~(data : Fr.t array) ~(key : Fr.t) ~(nonce : Fr.t)
    ~(o_d : Fr.t) ~(o_k : Fr.t) : Cs.t =
  let n = Array.length data in
  let ciphertext = Mimc.Ctr.encrypt ~key ~nonce data in
  let c_d = commit_dataset data o_d in
  let c_k = commit_key key o_k in
  let cs = Cs.create () in
  let nonce_w = Cs.public_input cs nonce in
  let c_d_w = Cs.public_input cs c_d in
  let c_k_w = Cs.public_input cs c_k in
  let ct_ws = Array.map (Cs.public_input cs) ciphertext in
  let data_ws = Array.map (Cs.fresh cs) data in
  let key_w = Cs.fresh cs key in
  let o_d_w = Cs.fresh cs o_d in
  let o_k_w = Cs.fresh cs o_k in
  Mimc_gadget.assert_ctr_encryption cs ~key:key_w ~nonce:nonce_w data_ws ct_ws;
  assert_dataset_opens cs ~commitment:c_d_w data_ws ~opening:o_d_w;
  Poseidon_gadget.assert_commitment_opens cs ~commitment:c_k_w [ key_w ]
    ~opening:o_k_w;
  ignore n;
  cs

let encryption_dummy ~n () =
  encryption_circuit ~data:(Array.make n Fr.one) ~key:Fr.one ~nonce:Fr.one
    ~o_d:Fr.one ~o_k:Fr.one

(* ---- pi_t: proofs of transformation (§IV-D) ----
   All transformation circuits relate source and derived datasets through
   their commitments only (the decoupling insight of §IV-B): publics are
   commitments, witnesses are plaintexts and openings. *)

(* Common scaffold: open every source and destination commitment. *)
let open_many cs (publics : Cs.wire list) (datasets : (Fr.t array * Fr.t) list)
    : Cs.wire array list =
  List.map2
    (fun c_w (data, o) ->
      let data_ws = Array.map (Cs.fresh cs) data in
      let o_w = Cs.fresh cs o in
      assert_dataset_opens cs ~commitment:c_w data_ws ~opening:o_w;
      data_ws)
    publics datasets

(* Duplication: D = S (paper §IV-D.1). publics: [c_s; c_d] *)

let duplication_descriptor ~n = Printf.sprintf "pi_t:dup:%d" n
let duplication_publics ~c_s ~c_d = [| c_s; c_d |]

let duplication_circuit ~(src : Fr.t array * Fr.t) ~(dst : Fr.t array * Fr.t) :
    Cs.t =
  let cs = Cs.create () in
  let c_s = Cs.public_input cs (commit_dataset (fst src) (snd src)) in
  let c_d = Cs.public_input cs (commit_dataset (fst dst) (snd dst)) in
  (match open_many cs [ c_s; c_d ] [ src; dst ] with
  | [ s_ws; d_ws ] -> Gadgets.assert_vec_equal cs s_ws d_ws
  | _ -> assert false);
  cs

let duplication_dummy ~n () =
  let d = Array.make n Fr.one in
  duplication_circuit ~src:(d, Fr.one) ~dst:(d, Fr.one)

(* Aggregation: D = S_1 || ... || S_x in order (§IV-D.2).
   publics: [c_s1; ..; c_sx; c_d] *)

let aggregation_descriptor ~sizes =
  "pi_t:agg:" ^ String.concat "," (List.map string_of_int sizes)

let aggregation_publics ~c_sources ~c_d = Array.of_list (c_sources @ [ c_d ])

let aggregation_circuit ~(sources : (Fr.t array * Fr.t) list)
    ~(dst : Fr.t array * Fr.t) : Cs.t =
  let cs = Cs.create () in
  let c_srcs =
    List.map (fun (d, o) -> Cs.public_input cs (commit_dataset d o)) sources
  in
  let c_d = Cs.public_input cs (commit_dataset (fst dst) (snd dst)) in
  let opened = open_many cs (c_srcs @ [ c_d ]) (sources @ [ dst ]) in
  let rec split = function
    | [ d_ws ] -> ([], (d_ws : Cs.wire array))
    | s :: rest ->
      let ss, d = split rest in
      (s :: ss, d)
    | [] -> assert false
  in
  let src_ws, d_ws = split opened in
  let concatenated = Array.concat src_ws in
  Gadgets.assert_vec_equal cs concatenated d_ws;
  cs

let aggregation_dummy ~sizes () =
  let sources = List.map (fun n -> (Array.make n Fr.one, Fr.one)) sizes in
  let total = List.fold_left ( + ) 0 sizes in
  aggregation_circuit ~sources ~dst:(Array.make total Fr.one, Fr.one)

(* Partition: S = D_1 || ... || D_y, exhaustive and mutually exclusive by
   construction of the ordered split (§IV-D.3).
   publics: [c_s; c_d1; ..; c_dy] *)

let partition_descriptor ~n ~sizes =
  Printf.sprintf "pi_t:part:%d:" n ^ String.concat "," (List.map string_of_int sizes)

let partition_publics ~c_s ~c_parts = Array.of_list (c_s :: c_parts)

let partition_circuit ~(src : Fr.t array * Fr.t)
    ~(parts : (Fr.t array * Fr.t) list) : Cs.t =
  List.iter
    (fun (d, _) ->
      if Array.length d = 0 then
        invalid_arg "Circuits.partition_circuit: empty part (n_k <> 0 required)")
    parts;
  let cs = Cs.create () in
  let c_s = Cs.public_input cs (commit_dataset (fst src) (snd src)) in
  let c_parts =
    List.map (fun (d, o) -> Cs.public_input cs (commit_dataset d o)) parts
  in
  let opened = open_many cs (c_s :: c_parts) (src :: parts) in
  (match opened with
  | s_ws :: part_ws ->
    let concatenated = Array.concat part_ws in
    Gadgets.assert_vec_equal cs s_ws concatenated
  | [] -> assert false);
  cs

let partition_dummy ~n ~sizes () =
  let src = (Array.make n Fr.one, Fr.one) in
  let parts = List.map (fun k -> (Array.make k Fr.one, Fr.one)) sizes in
  partition_circuit ~src ~parts

(* Processing: D = f(S) for a registered predicate f (§IV-D.4, §IV-E).
   publics: [c_s; c_d] *)

type processing_spec = {
  proc_name : string;
  out_size : int -> int;
  (* constrains the relation between source and derived wires; for pure
     functions this is compute-and-equate, but predicates like the
     convergence check of §IV-E.1 relate S and D without recomputing D *)
  check : Cs.t -> Cs.wire array -> Cs.wire array -> unit;
  (* reference (out-of-circuit) semantics used by the data owner *)
  reference : Fr.t array -> Fr.t array;
}

(** Spec for a pure function: the circuit recomputes D from S and equates. *)
let pure_spec ~name ~out_size ~apply ~reference =
  {
    proc_name = name;
    out_size;
    check = (fun cs s_ws d_ws -> Gadgets.assert_vec_equal cs (apply cs s_ws) d_ws);
    reference;
  }

let processing_registry : (string, processing_spec) Hashtbl.t = Hashtbl.create 8

let register_processing (spec : processing_spec) =
  Hashtbl.replace processing_registry spec.proc_name spec

let find_processing name = Hashtbl.find_opt processing_registry name

let processing_descriptor ~name ~n = Printf.sprintf "pi_t:proc:%s:%d" name n
let processing_publics ~c_s ~c_d = [| c_s; c_d |]

let processing_circuit ~(spec : processing_spec) ~(src : Fr.t array * Fr.t)
    ~(dst : Fr.t array * Fr.t) : Cs.t =
  let cs = Cs.create () in
  let c_s = Cs.public_input cs (commit_dataset (fst src) (snd src)) in
  let c_d = Cs.public_input cs (commit_dataset (fst dst) (snd dst)) in
  (match open_many cs [ c_s; c_d ] [ src; dst ] with
  | [ s_ws; d_ws ] -> spec.check cs s_ws d_ws
  | _ -> assert false);
  cs

let processing_dummy ~spec ~n () =
  let src = Array.make n Fr.one in
  let dst = spec.reference src in
  processing_circuit ~spec ~src:(src, Fr.one) ~dst:(dst, Fr.one)

(* Built-in processing specs (simple examples; the ML applications in
   Zkdet_apps register richer ones). *)

let scale_spec ~(factor : int) : processing_spec =
  pure_spec
    ~name:(Printf.sprintf "scale%d" factor)
    ~out_size:(fun n -> n)
    ~apply:(fun cs s_ws -> Array.map (fun w -> Cs.scale cs (Fr.of_int factor) w) s_ws)
    ~reference:(Array.map (Fr.mul (Fr.of_int factor)))

let sum_spec : processing_spec =
  pure_spec ~name:"sum"
    ~out_size:(fun _ -> 1)
    ~apply:(fun cs s_ws -> [| Gadgets.sum cs (Array.to_list s_ws) |])
    ~reference:(fun data -> [| Array.fold_left Fr.add Fr.zero data |])

let () =
  register_processing sum_spec;
  register_processing (scale_spec ~factor:2)

(* ---- pi_p: data validation for the exchange (§IV-F phase 1) ----
   publics: nonce :: c_d :: predicate params :: ct_0 .. ct_{n-1}
   witness: data, key, o_d *)

let validation_descriptor ~n ~predicate =
  Printf.sprintf "pi_p:%s:%d" (predicate_descriptor predicate) n

let validation_publics ~(nonce : Fr.t) ~(c_d : Fr.t) ~(predicate : predicate)
    ~(ciphertext : Fr.t array) : Fr.t array =
  Array.concat
    [ [| nonce; c_d |]; Array.of_list (predicate_publics predicate); ciphertext ]

let validation_circuit ~(data : Fr.t array) ~(key : Fr.t) ~(nonce : Fr.t)
    ~(o_d : Fr.t) ~(predicate : predicate) : Cs.t =
  let ciphertext = Mimc.Ctr.encrypt ~key ~nonce data in
  let c_d = commit_dataset data o_d in
  let cs = Cs.create () in
  let nonce_w = Cs.public_input cs nonce in
  let c_d_w = Cs.public_input cs c_d in
  let pred_ws = List.map (Cs.public_input cs) (predicate_publics predicate) in
  let ct_ws = Array.map (Cs.public_input cs) ciphertext in
  let data_ws = Array.map (Cs.fresh cs) data in
  let key_w = Cs.fresh cs key in
  let o_d_w = Cs.fresh cs o_d in
  assert_predicate cs predicate pred_ws data_ws;
  Mimc_gadget.assert_ctr_encryption cs ~key:key_w ~nonce:nonce_w data_ws ct_ws;
  assert_dataset_opens cs ~commitment:c_d_w data_ws ~opening:o_d_w;
  cs

let validation_dummy ~n ~predicate () =
  let data =
    match predicate with
    | Sum_equals s ->
      let d = Array.make n Fr.zero in
      if n > 0 then d.(0) <- s;
      d
    | Trivial | Entries_bounded _ -> Array.make n Fr.one
  in
  validation_circuit ~data ~key:Fr.one ~nonce:Fr.one ~o_d:Fr.one ~predicate

(* ---- pi_k: key negotiation (§IV-F phase 2) ----
   publics: [k_c; c_k; h_v]; witness: key, o_k, k_v *)

let key_descriptor = "pi_k"

let key_publics ~(k_c : Fr.t) ~(c_k : Fr.t) ~(h_v : Fr.t) = [| k_c; c_k; h_v |]

let key_circuit ~(key : Fr.t) ~(o_k : Fr.t) ~(k_v : Fr.t) : Cs.t =
  let k_c = Fr.add key k_v in
  let c_k = commit_key key o_k in
  let h_v = Poseidon.hash [ k_v ] in
  let cs = Cs.create () in
  let k_c_w = Cs.public_input cs k_c in
  let c_k_w = Cs.public_input cs c_k in
  let h_v_w = Cs.public_input cs h_v in
  let key_w = Cs.fresh cs key in
  let o_k_w = Cs.fresh cs o_k in
  let k_v_w = Cs.fresh cs k_v in
  (* Open(k, c, o) = 1 *)
  Poseidon_gadget.assert_commitment_opens cs ~commitment:c_k_w [ key_w ]
    ~opening:o_k_w;
  (* h_v = H(k_v) *)
  let h = Poseidon_gadget.hash cs [ k_v_w ] in
  Cs.assert_equal cs h h_v_w;
  (* k_c = k + k_v *)
  let s = Cs.add cs key_w k_v_w in
  Cs.assert_equal cs s k_c_w;
  cs

let key_dummy () = key_circuit ~key:Fr.one ~o_k:Fr.one ~k_v:Fr.one
