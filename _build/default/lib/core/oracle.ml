(* Decentralized data-source oracles (the paper's §IV-F points at DECO for
   attesting where source data came from: "the former can be produced by
   decentralized oracles like DECO").

   An oracle holds a Schnorr keypair over G1 and signs bindings
   (source label, dataset commitment c_d). A marketplace registry of
   oracle public keys lets auditors check that the ROOTS of a provenance
   chain — the tokens with no parents — carry attestations from trusted
   sources, completing the chain of custody: oracle -> source commitment
   -> pi_t chain -> derived asset. *)

module Fr = Zkdet_field.Bn254.Fr
module G1 = Zkdet_curve.G1
module Sha256 = Zkdet_hash.Sha256

type keypair = { secret : Fr.t; public : G1.t }

let generate ?(st = Random.State.make_self_init ()) () : keypair =
  let secret = Fr.random st in
  { secret; public = G1.mul G1.generator secret }

type attestation = {
  source_label : string; (* e.g. "weather-api.example/2026-07" *)
  commitment : Fr.t; (* c_d of the attested dataset *)
  commit_point : G1.t; (* Schnorr R = [r]G *)
  response : Fr.t; (* s = r + e * sk *)
}

let challenge ~(public : G1.t) ~(commit_point : G1.t) ~(source_label : string)
    ~(commitment : Fr.t) : Fr.t =
  Fr.of_bytes_be
    (Sha256.digest
       ("zkdet-oracle/" ^ G1.to_bytes public ^ G1.to_bytes commit_point
      ^ source_label ^ Fr.to_bytes_be commitment))

(** Sign a (source, commitment) binding. *)
let attest ?(st = Random.State.make_self_init ()) (kp : keypair)
    ~(source_label : string) ~(commitment : Fr.t) : attestation =
  let r = Fr.random st in
  let commit_point = G1.mul G1.generator r in
  let e = challenge ~public:kp.public ~commit_point ~source_label ~commitment in
  { source_label; commitment; commit_point; response = Fr.add r (Fr.mul e kp.secret) }

let verify_attestation (public : G1.t) (a : attestation) : bool =
  let e =
    challenge ~public ~commit_point:a.commit_point ~source_label:a.source_label
      ~commitment:a.commitment
  in
  G1.equal
    (G1.mul G1.generator a.response)
    (G1.add a.commit_point (G1.mul public e))

(** A registry of trusted oracles, keyed by source-label prefix. *)
module Registry = struct
  type t = (string, G1.t) Hashtbl.t

  let create () : t = Hashtbl.create 8
  let register (t : t) ~(source_label : string) (public : G1.t) =
    Hashtbl.replace t source_label public

  let check (t : t) (a : attestation) : bool =
    match Hashtbl.find_opt t a.source_label with
    | None -> false
    | Some public -> verify_attestation public a

  (** Every root commitment must carry a valid attestation from a
      registered oracle. *)
  let check_roots (t : t) ~(root_commitments : Fr.t list)
      (attestations : attestation list) : bool =
    List.for_all
      (fun c ->
        List.exists
          (fun a -> Fr.equal a.commitment c && check t a)
          attestations)
      root_commitments
end
