(* In-circuit Poseidon (sponge + commitment opening), mirroring
   {!Zkdet_poseidon.Poseidon} constraint-for-constraint. Full rounds cost
   3 S-boxes (3 mult gates each), partial rounds 1 — the asymmetry that
   makes Poseidon ~8x cheaper than Pedersen in constraints (§IV-C.2). *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Poseidon = Zkdet_poseidon.Poseidon

type wire = Cs.wire

let pow5 cs (x : wire) : wire =
  let x2 = Cs.mul cs x x in
  let x4 = Cs.mul cs x2 x2 in
  Cs.mul cs x4 x

(* (w + rc)^5 in exactly 3 gates: the round-constant addition is folded
   into the first squaring ((w+rc)^2 = w^2 + 2rc w + rc^2 is a single
   Plonk gate with a = b = w) and the final multiplication. *)
let pow5_with_rc cs (w : wire) (rc : Fr.t) : wire =
  let v = Fr.add (Cs.value cs w) rc in
  let t2 = Cs.fresh cs (Fr.sqr v) in
  Cs.add_gate cs ~ql:rc ~qr:rc ~qo:(Fr.neg Fr.one) ~qm:Fr.one ~qc:(Fr.sqr rc) w
    w t2;
  let t4 = Cs.mul cs t2 t2 in
  (* t5 = t4 * (w + rc) = t4*w + rc*t4 *)
  let t5 = Cs.fresh cs (Fr.mul (Cs.value cs t4) v) in
  Cs.add_gate cs ~ql:rc ~qr:Fr.zero ~qo:(Fr.neg Fr.one) ~qm:Fr.one ~qc:Fr.zero
    t4 w t5;
  t5

let permute cs (state : wire array) : wire array =
  if Array.length state <> Poseidon.width then
    invalid_arg "Poseidon_gadget.permute: width";
  let width = Poseidon.width in
  let half_full = Poseidon.full_rounds / 2 in
  let s = ref state in
  for r = 0 to Poseidon.total_rounds - 1 do
    let rc j = Poseidon.round_constants.((r * width) + j) in
    let full = r < half_full || r >= half_full + Poseidon.partial_rounds in
    if full then begin
      let sboxed = Array.init width (fun j -> pow5_with_rc cs !s.(j) (rc j)) in
      s :=
        Array.init width (fun i ->
            Gadgets.linear_combination cs
              (List.init width (fun j -> (Poseidon.mds.(i).(j), sboxed.(j))))
              Fr.zero)
    end
    else begin
      (* Only wire 0 passes the S-box; the other wires' round constants
         fold into the MDS linear combination for free. *)
      let sb0 = pow5_with_rc cs !s.(0) (rc 0) in
      let prev = !s in
      s :=
        Array.init width (fun i ->
            let const =
              Fr.add
                (Fr.mul Poseidon.mds.(i).(1) (rc 1))
                (Fr.mul Poseidon.mds.(i).(2) (rc 2))
            in
            Gadgets.linear_combination cs
              [ (Poseidon.mds.(i).(0), sb0); (Poseidon.mds.(i).(1), prev.(1));
                (Poseidon.mds.(i).(2), prev.(2)) ]
              const)
    end
  done;
  !s

(** Sponge hash over wires; must agree with {!Poseidon.hash}. *)
let hash cs (inputs : wire list) : wire =
  let n = List.length inputs in
  let init =
    [| Cs.constant cs Fr.zero; Cs.constant cs Fr.zero;
       Cs.constant cs (Fr.of_int ((n * 2) + 1)) |]
  in
  let rec absorb state = function
    | [] -> state
    | [ x ] ->
      let state = Array.copy state in
      state.(0) <- Cs.add cs state.(0) x;
      permute cs state
    | x :: y :: rest ->
      let state = Array.copy state in
      state.(0) <- Cs.add cs state.(0) x;
      state.(1) <- Cs.add cs state.(1) y;
      absorb (permute cs state) rest
  in
  let final = if n = 0 then permute cs init else absorb init inputs in
  final.(0)

let hash2 cs a b = hash cs [ a; b ]

(** Constrain [c = Commit(msgs; o)] — the in-circuit opening check
    Open(m, c, o) = 1 used throughout §IV. *)
let assert_commitment_opens cs ~(commitment : wire) (msgs : wire list)
    ~(opening : wire) =
  let recomputed = hash cs (opening :: msgs) in
  Cs.assert_equal cs recomputed commitment
