(** Poseidon Merkle trees plus the in-circuit membership gadget
    (paper §IV-D.4's "Merkle proof" gadget). Also the authenticated data
    structure behind the FairSwap baseline. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs

type wire = Cs.wire

type tree = {
  depth : int;
  levels : Fr.t array array;  (** [levels.(0)] = padded leaves *)
}

val empty_leaf : Fr.t

val build : depth:int -> Fr.t array -> tree
(** Tree with [2^depth] leaf slots, zero-padded. *)

val root : tree -> Fr.t

type path = { leaf_index : int; siblings : Fr.t array (** bottom-up *) }

val prove_membership : tree -> int -> path
val verify_membership : root:Fr.t -> leaf:Fr.t -> path -> bool

val assert_membership : Cs.t -> root_wire:wire -> leaf:wire -> path -> unit
(** In-circuit membership: the siblings and direction bits become
    witnesses; the recomputed root is constrained to [root_wire]. *)
