(* Core gadget library (paper §IV-D "mathematical primitives"): booleans,
   bit decomposition, range and comparison checks, selection, linear
   algebra. All gadgets create constraints on a {!Zkdet_plonk.Cs.t} builder
   and return output wires; synthesis is data-independent. *)

module Fr = Zkdet_field.Bn254.Fr
module Nat = Zkdet_num.Nat
module Cs = Zkdet_plonk.Cs

type wire = Cs.wire

(* ---- linear combinations ---- *)

(** [linear_combination cs terms const] returns a wire holding
    [sum coeff_i * w_i + const], using a chain of affine gates. *)
let linear_combination (cs : Cs.t) (terms : (Fr.t * wire) list) (const : Fr.t) :
    wire =
  match terms with
  | [] -> Cs.constant cs const
  | [ (s, w) ] -> Cs.affine cs ~sa:s w ~sb:Fr.zero w ~const
  | (s1, w1) :: (s2, w2) :: rest ->
    let first = Cs.affine cs ~sa:s1 w1 ~sb:s2 w2 ~const in
    List.fold_left
      (fun acc (s, w) -> Cs.affine cs ~sa:Fr.one acc ~sb:s w ~const:Fr.zero)
      first rest

let sum cs (ws : wire list) =
  linear_combination cs (List.map (fun w -> (Fr.one, w)) ws) Fr.zero

(* ---- booleans ---- *)

(** Allocate a boolean wire with the given value. *)
let boolean (cs : Cs.t) (b : bool) : wire =
  let w = Cs.fresh cs (if b then Fr.one else Fr.zero) in
  Cs.assert_boolean cs w;
  w

let band cs a b = Cs.mul cs a b

let bor cs a b =
  (* a + b - ab *)
  let ab = Cs.mul cs a b in
  linear_combination cs [ (Fr.one, a); (Fr.one, b); (Fr.neg Fr.one, ab) ] Fr.zero

let bxor cs a b =
  (* a + b - 2ab *)
  let ab = Cs.mul cs a b in
  linear_combination cs
    [ (Fr.one, a); (Fr.one, b); (Fr.neg (Fr.of_int 2), ab) ]
    Fr.zero

let bnot cs a = linear_combination cs [ (Fr.neg Fr.one, a) ] Fr.one

(** [select cs s a b] = if s then a else b (s must be boolean). *)
let select cs s a b =
  (* s*(a - b) + b *)
  let d = Cs.sub cs a b in
  let sd = Cs.mul cs s d in
  Cs.add cs sd b

(* ---- zero tests and equality ---- *)

(** [is_zero cs w] returns a boolean wire that is 1 iff [w] = 0.
    Uses the inverse trick: z = 1 - w*inv, w*z = 0. *)
let is_zero (cs : Cs.t) (w : wire) : wire =
  let v = Cs.value cs w in
  let inv_v = if Fr.is_zero v then Fr.zero else Fr.inv v in
  let inv_w = Cs.fresh cs inv_v in
  let z = Cs.fresh cs (if Fr.is_zero v then Fr.one else Fr.zero) in
  (* w * inv = 1 - z  <=>  qM w inv + qO z + qC = 0 with qO=1, qC=-1 *)
  Cs.add_gate cs ~ql:Fr.zero ~qr:Fr.zero ~qo:Fr.one ~qm:Fr.one
    ~qc:(Fr.neg Fr.one) w inv_w z;
  (* w * z = 0 *)
  Cs.add_gate cs ~ql:Fr.zero ~qr:Fr.zero ~qo:Fr.zero ~qm:Fr.one ~qc:Fr.zero w z
    (Cs.zero_wire cs);
  z

let equal cs a b = is_zero cs (Cs.sub cs a b)

let assert_not_zero cs w =
  (* there exists inv with w * inv = 1 *)
  let v = Cs.value cs w in
  let inv_w = Cs.fresh cs (if Fr.is_zero v then Fr.zero else Fr.inv v) in
  Cs.add_gate cs ~ql:Fr.zero ~qr:Fr.zero ~qo:Fr.zero ~qm:Fr.one
    ~qc:(Fr.neg Fr.one) w inv_w (Cs.zero_wire cs)

(* ---- bit decomposition and ranges ---- *)

(** [to_bits cs w ~nbits] decomposes [w] into [nbits] boolean wires
    (little-endian) and constrains the recomposition. The witness value
    must fit in [nbits] bits or proving will fail. *)
let to_bits (cs : Cs.t) (w : wire) ~nbits : wire list =
  let nat = Fr.to_nat (Cs.value cs w) in
  let bits = List.init nbits (fun i -> boolean cs (Nat.testbit nat i)) in
  let recomposed =
    linear_combination cs
      (List.mapi (fun i b -> (Fr.pow (Fr.of_int 2) i, b)) bits)
      Fr.zero
  in
  Cs.assert_equal cs recomposed w;
  bits

let from_bits (cs : Cs.t) (bits : wire list) : wire =
  linear_combination cs
    (List.mapi (fun i b -> (Fr.pow (Fr.of_int 2) i, b)) bits)
    Fr.zero

(** Constrain [w] to fit in [nbits] bits. *)
let range_check cs w ~nbits = ignore (to_bits cs w ~nbits)

(** [less_than cs a b ~nbits] returns a boolean wire = (a < b), assuming
    both values fit in [nbits] bits (enforced). *)
let less_than (cs : Cs.t) (a : wire) (b : wire) ~nbits : wire =
  range_check cs a ~nbits;
  range_check cs b ~nbits;
  (* d = a - b + 2^nbits is in [1, 2^(nbits+1)-1]; its top bit is 1 iff
     a >= b. *)
  let d =
    linear_combination cs
      [ (Fr.one, a); (Fr.neg Fr.one, b) ]
      (Fr.pow (Fr.of_int 2) nbits)
  in
  let bits = to_bits cs d ~nbits:(nbits + 1) in
  let msb = List.nth bits nbits in
  bnot cs msb

let less_equal cs a b ~nbits = bnot cs (less_than cs b a ~nbits)

let assert_less_than cs a b ~nbits =
  let lt = less_than cs a b ~nbits in
  Cs.assert_constant cs lt Fr.one

(* ---- vectors and matrices (paper: "algebraic and matrix operation") ---- *)

let inner_product cs (xs : wire array) (ys : wire array) : wire =
  if Array.length xs <> Array.length ys then
    invalid_arg "Gadgets.inner_product: length mismatch";
  let products = Array.map2 (fun x y -> Cs.mul cs x y) xs ys in
  sum cs (Array.to_list products)

(** [mat_vec_mul cs m v] with [m] an array of rows. *)
let mat_vec_mul cs (m : wire array array) (v : wire array) : wire array =
  Array.map (fun row -> inner_product cs row v) m

let mat_mul cs (a : wire array array) (b : wire array array) : wire array array =
  let rows = Array.length a in
  let inner = Array.length b in
  if inner = 0 then invalid_arg "Gadgets.mat_mul: empty";
  let cols = Array.length b.(0) in
  Array.init rows (fun i ->
      Array.init cols (fun j ->
          let col = Array.init inner (fun k -> b.(k).(j)) in
          inner_product cs a.(i) col))

(** Constrain two wire arrays to be element-wise equal
    (the paper's duplication predicate, §IV-D.1). *)
let assert_vec_equal cs (xs : wire array) (ys : wire array) =
  if Array.length xs <> Array.length ys then
    invalid_arg "Gadgets.assert_vec_equal: length mismatch";
  Array.iter2 (fun x y -> Cs.assert_equal cs x y) xs ys
