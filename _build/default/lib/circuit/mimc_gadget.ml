(* In-circuit MiMC: the encryption relation Enc(k, m) used by every proof
   of encryption (pi_e, pi_p). Each round costs 4 multiplication gates
   (x^7 via x2, x4, x6, x7), so one block is ~365 constraints — the
   circuit-friendliness the paper's §IV-C.1 relies on. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Mimc = Zkdet_mimc.Mimc

type wire = Cs.wire

let pow7 cs (x : wire) : wire =
  let x2 = Cs.mul cs x x in
  let x4 = Cs.mul cs x2 x2 in
  let x6 = Cs.mul cs x4 x2 in
  Cs.mul cs x6 x

(** [encrypt_block cs ~key m] returns the wire of E_key(m). *)
let encrypt_block cs ~(key : wire) (m : wire) : wire =
  let s = ref m in
  for i = 0 to Mimc.rounds - 1 do
    let t =
      Gadgets.linear_combination cs
        [ (Fr.one, !s); (Fr.one, key) ]
        Mimc.round_constants.(i)
    in
    s := pow7 cs t
  done;
  Cs.add cs !s key

(** CTR keystream block at index [i] with a wire nonce. *)
let keystream cs ~(key : wire) ~(nonce : wire) (i : int) : wire =
  let ctr = Cs.add_const cs nonce (Fr.of_int i) in
  encrypt_block cs ~key ctr

(** Constrain [ct.(i) = pt.(i) + E_key(nonce + i)] for all i — the proof
    of encryption relation (Equation 1 of the paper, in CTR form). *)
let assert_ctr_encryption cs ~(key : wire) ~(nonce : wire) (pt : wire array)
    (ct : wire array) =
  if Array.length pt <> Array.length ct then
    invalid_arg "Mimc_gadget.assert_ctr_encryption: length mismatch";
  Array.iteri
    (fun i p ->
      let ks = keystream cs ~key ~nonce i in
      let expected = Cs.add cs p ks in
      Cs.assert_equal cs expected ct.(i))
    pt
