(* Fixed-point arithmetic gadgets (paper §IV-D.4: "logarithmic computation,
   linearization" and §IV-E's model-training circuits).

   Numbers are scaled integers: a real x is represented by round(x * 2^frac)
   as a field element; negatives use the field's additive inverse. Every
   nonlinear gadget (mul, div, exp, ...) allocates witness results and then
   *verifies* them with range-checked constraints — the standard
   verify-don't-compute pattern for SNARK circuits. *)

module Fr = Zkdet_field.Bn254.Fr
module Nat = Zkdet_num.Nat
module Cs = Zkdet_plonk.Cs

type wire = Cs.wire

let frac_bits = 16
let scale_int = 1 lsl frac_bits
let scale = Fr.of_int scale_int

(* Magnitudes are bounded to [mag_bits] bits so products stay far below the
   field modulus and sign reasoning stays valid: real values up to 2^16
   with 16 fractional bits. Each extra bit costs a gate in every range
   check, so this is kept as tight as the applications allow. *)
let mag_bits = 32

let half_field = Nat.shift_right Fr.modulus 1

let is_negative (v : Fr.t) = Nat.compare (Fr.to_nat v) half_field > 0

(** Convert a float to its in-field fixed-point representation. *)
let of_float (x : float) : Fr.t =
  let scaled = Int64.to_int (Int64.of_float (Float.round (x *. float_of_int scale_int))) in
  Fr.of_int scaled

let to_float (v : Fr.t) : float =
  let neg = is_negative v in
  let m = if neg then Fr.neg v else v in
  match Nat.to_int (Fr.to_nat m) with
  | Some i -> (if neg then -.1.0 else 1.0) *. float_of_int i /. float_of_int scale_int
  | None -> invalid_arg "Fixed_point.to_float: out of range"

(* forward declaration of the split cache (defined below) *)

(* sign_split results are memoized per builder: matrix products and
   per-sample loops feed the same wires into many multiplications, and a
   split costs ~50 constraints. The cache is keyed by physical builder
   identity (a handful of builders exist at a time). *)
let split_caches : (Cs.t * (int, wire * wire) Hashtbl.t) list ref = ref []

let split_cache (cs : Cs.t) : (int, wire * wire) Hashtbl.t =
  match List.find_opt (fun (c, _) -> c == cs) !split_caches with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    split_caches := (cs, tbl) :: List.filteri (fun i _ -> i < 7) !split_caches;
    tbl

(** A fixed-point constant wire; its (sign, magnitude) split is known
    statically and cached, so constants (e.g. model weights) never pay
    for a runtime split. *)
let constant cs (x : float) : wire =
  let v = of_float x in
  let w = Cs.constant cs v in
  let cache = split_cache cs in
  if not (Hashtbl.mem cache w) then begin
    let neg = is_negative v in
    let s = Cs.constant cs (if neg then Fr.one else Fr.zero) in
    let m = Cs.constant cs (if neg then Fr.neg v else v) in
    Hashtbl.replace cache w (s, m)
  end;
  w

(** Split a signed fixed-point wire into (sign, magnitude):
    w = (1 - 2s) * m, with s boolean and m range-checked. Memoized. *)
let sign_split cs (w : wire) : wire * wire =
  let cache = split_cache cs in
  match Hashtbl.find_opt cache w with
  | Some sm -> sm
  | None ->
    let v = Cs.value cs w in
    let neg = is_negative v in
    let s = Gadgets.boolean cs neg in
    let m = Cs.fresh cs (if neg then Fr.neg v else v) in
    Gadgets.range_check cs m ~nbits:mag_bits;
    (* w = m - 2 s m *)
    let sm = Cs.mul cs s m in
    let reconstructed =
      Gadgets.linear_combination cs
        [ (Fr.one, m); (Fr.neg (Fr.of_int 2), sm) ]
        Fr.zero
    in
    Cs.assert_equal cs reconstructed w;
    Hashtbl.replace cache w (s, m);
    (s, m)

(** Range-check a signed value to [mag_bits] bits of magnitude. *)
let assert_in_range cs (w : wire) = ignore (sign_split cs w)

let add = Cs.add
let sub = Cs.sub
let neg cs w = Gadgets.linear_combination cs [ (Fr.neg Fr.one, w) ] Fr.zero

(** Fixed-point multiplication: out = a*b / 2^frac, witness-computed and
    verified by [a*b = out * 2^frac + rem], with [rem] and the magnitude of
    [out] range-checked. Works on signed values via sign/magnitude. *)
let mul cs (a : wire) (b : wire) : wire =
  let sa, ma = sign_split cs a in
  let sb, mb = sign_split cs b in
  (* product of magnitudes, exact *)
  let prod = Cs.mul cs ma mb in
  (* witness: quotient and remainder of prod / 2^frac *)
  let prod_nat = Fr.to_nat (Cs.value cs prod) in
  let q_nat = Nat.shift_right prod_nat frac_bits in
  let r_nat = Nat.sub prod_nat (Nat.shift_left q_nat frac_bits) in
  let q = Cs.fresh cs (Fr.of_nat q_nat) in
  let r = Cs.fresh cs (Fr.of_nat r_nat) in
  Gadgets.range_check cs r ~nbits:frac_bits;
  Gadgets.range_check cs q ~nbits:mag_bits;
  (* prod = q * 2^frac + r *)
  let recomposed =
    Gadgets.linear_combination cs [ (scale, q); (Fr.one, r) ] Fr.zero
  in
  Cs.assert_equal cs recomposed prod;
  (* sign of result: sa xor sb; out = (1 - 2 sxor) q *)
  let sxor = Gadgets.bxor cs sa sb in
  let sq = Cs.mul cs sxor q in
  let out =
    Gadgets.linear_combination cs
      [ (Fr.one, q); (Fr.neg (Fr.of_int 2), sq) ]
      Fr.zero
  in
  (* the result's split is known by construction: reuse it downstream *)
  Hashtbl.replace (split_cache cs) out (sxor, q);
  out

(** Fixed-point division out = a / b (b must be nonzero; sign handled).
    Verified by [ma * 2^frac = out_m * mb + rem, rem < mb]. *)
let div cs (a : wire) (b : wire) : wire =
  let sa, ma = sign_split cs a in
  let sb, mb = sign_split cs b in
  Gadgets.assert_not_zero cs mb;
  let ma_nat = Fr.to_nat (Cs.value cs ma) in
  let mb_nat = Fr.to_nat (Cs.value cs mb) in
  let num = Nat.shift_left ma_nat frac_bits in
  let q_nat, r_nat = Nat.divmod num mb_nat in
  let q = Cs.fresh cs (Fr.of_nat q_nat) in
  let r = Cs.fresh cs (Fr.of_nat r_nat) in
  Gadgets.range_check cs q ~nbits:mag_bits;
  (* ma * 2^frac = q * mb + r *)
  let q_mb = Cs.mul cs q mb in
  let rhs = Cs.add cs q_mb r in
  let lhs = Gadgets.linear_combination cs [ (scale, ma) ] Fr.zero in
  Cs.assert_equal cs lhs rhs;
  (* r < mb *)
  ignore (Gadgets.assert_less_than cs r mb ~nbits:(mag_bits + frac_bits));
  let sxor = Gadgets.bxor cs sa sb in
  let sq = Cs.mul cs sxor q in
  let out =
    Gadgets.linear_combination cs
      [ (Fr.one, q); (Fr.neg (Fr.of_int 2), sq) ]
      Fr.zero
  in
  Hashtbl.replace (split_cache cs) out (sxor, q);
  out

(** ReLU: max(0, x) = if sign(x) then 0 else x (paper §IV-E.2). *)
let relu cs (x : wire) : wire =
  let s, m = sign_split cs x in
  ignore m;
  Gadgets.select cs s (Cs.constant cs Fr.zero) x

(** Absolute value. *)
let abs cs (x : wire) : wire =
  let _, m = sign_split cs x in
  m

(** Comparison on signed fixed-point: |a - b| <= eps (all wires).
    Used for the convergence predicate of §IV-E.1. *)
let assert_abs_le cs (a : wire) (b : wire) (eps : wire) : unit =
  let d = Cs.sub cs a b in
  let m = abs cs d in
  Gadgets.assert_less_than cs m eps ~nbits:(mag_bits + 1)

(* ---- polynomial approximations for transcendental functions ---- *)

(** Evaluate a polynomial with fixed-point float coefficients (Horner). *)
let polynomial cs (coeffs : float list) (x : wire) : wire =
  match List.rev coeffs with
  | [] -> Cs.constant cs Fr.zero
  | top :: rest ->
    List.fold_left
      (fun acc c -> add cs (mul cs acc x) (Cs.constant cs (of_float c)))
      (Cs.constant cs (of_float top))
      rest

(* Degree-6 Taylor around 0 for exp on |x| <= ~2; the benches/apps clamp
   inputs into this range before calling. *)
let exp_coeffs =
  [ 1.0; 1.0; 0.5; 1.0 /. 6.0; 1.0 /. 24.0; 1.0 /. 120.0; 1.0 /. 720.0 ]

(** e^x for x in roughly [-2, 2] (approximation; the paper's gadget
    library similarly evaluates nonlinearities by polynomial circuits). *)
let exp cs (x : wire) : wire = polynomial cs exp_coeffs x

(** Logistic sigmoid 1/(1 + e^-x). *)
let sigmoid cs (x : wire) : wire =
  let negx = neg cs x in
  let e = exp cs negx in
  let denom = add cs (constant cs 1.0) e in
  div cs (constant cs 1.0) denom

(* ln(1+t) Taylor for |t| < 1, used by softplus/log around operating
   points. *)
let ln1p_coeffs = [ 0.0; 1.0; -0.5; 1.0 /. 3.0; -0.25; 0.2; -1.0 /. 6.0 ]

(** ln(1 + t) for |t| < 1. *)
let ln1p cs (t : wire) : wire = polynomial cs ln1p_coeffs t

(** softplus(x) = ln(1 + e^x), accurate for |x| <= ~1.5 — enough for the
    loss-difference predicate where arguments are pre-scaled. *)
let softplus cs (x : wire) : wire =
  let e = exp cs x in
  (* ln(1 + e) = ln 2 + ln(1 + (e - 1)/2) *)
  let t = mul cs (sub cs e (constant cs 1.0)) (constant cs 0.5) in
  add cs (constant cs (Float.log 2.0)) (ln1p cs t)

(** Out-of-circuit fixed-point arithmetic with EXACTLY the gadget
    semantics (same truncation of products and quotients), so that a data
    owner's reference computation reproduces the in-circuit result
    bit-for-bit. Used by the pure processing specs of {!Zkdet_apps}. *)
module Value = struct
  type t = Fr.t

  let of_float = of_float
  let to_float = to_float
  let add = Fr.add
  let sub = Fr.sub
  let neg = Fr.neg

  let split (v : t) : bool * Nat.t =
    let neg = is_negative v in
    (neg, Fr.to_nat (if neg then Fr.neg v else v))

  let with_sign neg (m : Nat.t) : t =
    let x = Fr.of_nat m in
    if neg then Fr.neg x else x

  let mul (a : t) (b : t) : t =
    let sa, ma = split a and sb, mb = split b in
    let q = Nat.shift_right (Nat.mul ma mb) frac_bits in
    with_sign (sa <> sb) q

  let div (a : t) (b : t) : t =
    let sa, ma = split a and sb, mb = split b in
    if Nat.is_zero mb then invalid_arg "Fixed_point.Value.div: zero divisor";
    let q = Nat.div (Nat.shift_left ma frac_bits) mb in
    with_sign (sa <> sb) q

  let relu (x : t) : t = if is_negative x then Fr.zero else x
  let abs (x : t) : t = if is_negative x then Fr.neg x else x

  let polynomial (coeffs : float list) (x : t) : t =
    match List.rev coeffs with
    | [] -> Fr.zero
    | top :: rest ->
      List.fold_left
        (fun acc c -> add (mul acc x) (of_float c))
        (of_float top) rest

  let exp (x : t) : t = polynomial exp_coeffs x

  let sigmoid (x : t) : t =
    let e = exp (neg x) in
    div (of_float 1.0) (add (of_float 1.0) e)

  let ln1p (t_ : t) : t = polynomial ln1p_coeffs t_

  let softplus (x : t) : t =
    let e = exp x in
    let t_ = mul (sub e (of_float 1.0)) (of_float 0.5) in
    add (of_float (Float.log 2.0)) (ln1p t_)
end
