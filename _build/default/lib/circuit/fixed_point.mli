(** Fixed-point arithmetic gadgets (paper §IV-D.4 / §IV-E).

    Reals are scaled integers ([2^16] fractional bits) represented in the
    field; negatives use the additive inverse. Nonlinear gadgets
    (mul/div/exp/...) allocate witness results and verify them with
    range-checked constraints. Sign/magnitude splits are memoized per
    builder, so reused operands (model weights, per-sample inputs) pay
    for their decomposition once. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs

type wire = Cs.wire

val frac_bits : int
val scale_int : int
val mag_bits : int
(** Magnitude bound in bits: values up to 2^16 in real terms. *)

val is_negative : Fr.t -> bool
val of_float : float -> Fr.t
val to_float : Fr.t -> float

val constant : Cs.t -> float -> wire
(** Constant wire with a statically known (cached) sign/magnitude split. *)

val sign_split : Cs.t -> wire -> wire * wire
(** [(s, m)] with [w = (1 - 2s) m], [s] boolean, [m] range-checked.
    Memoized per builder. *)

val assert_in_range : Cs.t -> wire -> unit

val add : Cs.t -> wire -> wire -> wire
val sub : Cs.t -> wire -> wire -> wire
val neg : Cs.t -> wire -> wire

val mul : Cs.t -> wire -> wire -> wire
(** Truncating fixed-point product, verified by
    [a*b = out * 2^frac + rem] with range checks. *)

val div : Cs.t -> wire -> wire -> wire
(** Truncating division; the divisor must be nonzero. *)

val relu : Cs.t -> wire -> wire
val abs : Cs.t -> wire -> wire

val assert_abs_le : Cs.t -> wire -> wire -> wire -> unit
(** [|a - b| <= eps] — the convergence predicate of §IV-E.1. *)

val polynomial : Cs.t -> float list -> wire -> wire
(** Horner evaluation with fixed-point float coefficients. *)

val exp_coeffs : float list
val ln1p_coeffs : float list

val exp : Cs.t -> wire -> wire
(** e^x for x in roughly [-2, 2] (degree-6 polynomial approximation). *)

val sigmoid : Cs.t -> wire -> wire
val ln1p : Cs.t -> wire -> wire
val softplus : Cs.t -> wire -> wire

(** Out-of-circuit fixed-point arithmetic with EXACTLY the gadget
    semantics (same truncation), so a data owner's reference computation
    reproduces the in-circuit result bit-for-bit. *)
module Value : sig
  type t = Fr.t

  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val relu : t -> t
  val abs : t -> t
  val polynomial : float list -> t -> t
  val exp : t -> t
  val sigmoid : t -> t
  val ln1p : t -> t
  val softplus : t -> t
end
