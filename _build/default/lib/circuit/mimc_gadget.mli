(** In-circuit MiMC: the encryption relation behind every proof of
    encryption (pi_e, pi_p). ~4 multiplication gates per round, ~365
    constraints per block — the circuit-friendliness of §IV-C.1. *)

module Cs = Zkdet_plonk.Cs

type wire = Cs.wire

val pow7 : Cs.t -> wire -> wire

val encrypt_block : Cs.t -> key:wire -> wire -> wire
(** The wire of E_key(m); mirrors {!Zkdet_mimc.Mimc.encrypt_block}
    constraint-for-value. *)

val keystream : Cs.t -> key:wire -> nonce:wire -> int -> wire

val assert_ctr_encryption :
  Cs.t -> key:wire -> nonce:wire -> wire array -> wire array -> unit
(** Constrain [ct.(i) = pt.(i) + E_key(nonce + i)] for all i — Equation 1
    of the paper in CTR form. *)
