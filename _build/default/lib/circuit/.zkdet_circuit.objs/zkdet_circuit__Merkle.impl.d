lib/circuit/merkle.ml: Array Gadgets Poseidon_gadget Zkdet_field Zkdet_plonk Zkdet_poseidon
