lib/circuit/gadgets.mli: Zkdet_field Zkdet_plonk
