lib/circuit/mimc_gadget.mli: Zkdet_plonk
