lib/circuit/merkle.mli: Zkdet_field Zkdet_plonk
