lib/circuit/mimc_gadget.ml: Array Gadgets Zkdet_field Zkdet_mimc Zkdet_plonk
