lib/circuit/fixed_point.mli: Zkdet_field Zkdet_plonk
