lib/circuit/gadgets.ml: Array List Zkdet_field Zkdet_num Zkdet_plonk
