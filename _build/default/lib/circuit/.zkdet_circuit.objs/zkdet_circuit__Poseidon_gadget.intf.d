lib/circuit/poseidon_gadget.mli: Zkdet_field Zkdet_plonk
