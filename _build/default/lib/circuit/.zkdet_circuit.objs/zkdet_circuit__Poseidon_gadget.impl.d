lib/circuit/poseidon_gadget.ml: Array Gadgets List Zkdet_field Zkdet_plonk Zkdet_poseidon
