lib/circuit/fixed_point.ml: Float Gadgets Hashtbl Int64 List Zkdet_field Zkdet_num Zkdet_plonk
