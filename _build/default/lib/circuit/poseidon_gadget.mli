(** In-circuit Poseidon, mirroring {!Zkdet_poseidon.Poseidon} exactly.
    Round constants are fused into the S-box gates ((w+rc)^2 is a single
    Plonk gate) and, for partial rounds, into the MDS linear combination —
    ~660 constraints per permutation. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs

type wire = Cs.wire

val pow5 : Cs.t -> wire -> wire
val pow5_with_rc : Cs.t -> wire -> Fr.t -> wire
val permute : Cs.t -> wire array -> wire array
val hash : Cs.t -> wire list -> wire
val hash2 : Cs.t -> wire -> wire -> wire

val assert_commitment_opens :
  Cs.t -> commitment:wire -> wire list -> opening:wire -> unit
(** The in-circuit [Open(m, c, o) = 1] check used throughout §IV. *)
