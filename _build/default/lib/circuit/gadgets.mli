(** Core gadget library (paper §IV-D "mathematical primitives"):
    booleans, bit decomposition, range and comparison checks, selection,
    and linear algebra over circuit wires. All gadgets constrain a
    {!Zkdet_plonk.Cs.t} builder and return output wires; synthesis is
    data-independent. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs

type wire = Cs.wire

val linear_combination : Cs.t -> (Fr.t * wire) list -> Fr.t -> wire
(** [linear_combination cs terms const] = [sum coeff_i * w_i + const],
    via a chain of affine gates (ceil(k/2) gates for k terms). *)

val sum : Cs.t -> wire list -> wire

(** {2 Booleans} *)

val boolean : Cs.t -> bool -> wire
(** Allocate a wire constrained to be 0 or 1. *)

val band : Cs.t -> wire -> wire -> wire
val bor : Cs.t -> wire -> wire -> wire
val bxor : Cs.t -> wire -> wire -> wire
val bnot : Cs.t -> wire -> wire

val select : Cs.t -> wire -> wire -> wire -> wire
(** [select cs s a b] = if [s] then [a] else [b]; [s] must be boolean. *)

(** {2 Zero tests and equality} *)

val is_zero : Cs.t -> wire -> wire
(** Boolean wire = 1 iff the input is zero (inverse trick). *)

val equal : Cs.t -> wire -> wire -> wire
val assert_not_zero : Cs.t -> wire -> unit

(** {2 Bits, ranges, comparisons} *)

val to_bits : Cs.t -> wire -> nbits:int -> wire list
(** Little-endian boolean decomposition with a recomposition constraint;
    proving fails if the value exceeds [nbits] bits. *)

val from_bits : Cs.t -> wire list -> wire
val range_check : Cs.t -> wire -> nbits:int -> unit

val less_than : Cs.t -> wire -> wire -> nbits:int -> wire
(** Boolean (a < b) for values range-checked to [nbits] bits. *)

val less_equal : Cs.t -> wire -> wire -> nbits:int -> wire
val assert_less_than : Cs.t -> wire -> wire -> nbits:int -> unit

(** {2 Vectors and matrices} *)

val inner_product : Cs.t -> wire array -> wire array -> wire
val mat_vec_mul : Cs.t -> wire array array -> wire array -> wire array
val mat_mul : Cs.t -> wire array array -> wire array array -> wire array array

val assert_vec_equal : Cs.t -> wire array -> wire array -> unit
(** Element-wise equality (the duplication predicate, §IV-D.1). *)
