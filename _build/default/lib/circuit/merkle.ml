(* Poseidon Merkle trees plus the in-circuit membership proof gadget
   (paper §IV-D.4: "Merkle proof" in the cryptographic gadget library). *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Poseidon = Zkdet_poseidon.Poseidon

type wire = Cs.wire

(* ---- plain (out-of-circuit) Merkle tree ---- *)

type tree = { depth : int; levels : Fr.t array array (* levels.(0) = leaves *) }

let empty_leaf = Fr.zero

(** Build a tree of the given [depth] (2^depth leaf slots) over the
    leaves, padding with zero leaves. *)
let build ~depth (leaves : Fr.t array) : tree =
  let n = 1 lsl depth in
  if Array.length leaves > n then invalid_arg "Merkle.build: too many leaves";
  let level0 = Array.make n empty_leaf in
  Array.blit leaves 0 level0 0 (Array.length leaves);
  let levels = Array.make (depth + 1) [||] in
  levels.(0) <- level0;
  for d = 1 to depth do
    let prev = levels.(d - 1) in
    levels.(d) <-
      Array.init (Array.length prev / 2) (fun i ->
          Poseidon.hash2 prev.(2 * i) prev.((2 * i) + 1))
  done;
  { depth; levels }

let root (t : tree) = t.levels.(t.depth).(0)

type path = { leaf_index : int; siblings : Fr.t array (* bottom-up *) }

let prove_membership (t : tree) (leaf_index : int) : path =
  if leaf_index < 0 || leaf_index >= Array.length t.levels.(0) then
    invalid_arg "Merkle.prove_membership: index out of range";
  let siblings =
    Array.init t.depth (fun d ->
        let idx = leaf_index lsr d in
        t.levels.(d).(idx lxor 1))
  in
  { leaf_index; siblings }

let verify_membership ~(root : Fr.t) ~(leaf : Fr.t) (p : path) : bool =
  let acc = ref leaf in
  Array.iteri
    (fun d sibling ->
      let bit = (p.leaf_index lsr d) land 1 in
      acc :=
        if bit = 0 then Poseidon.hash2 !acc sibling
        else Poseidon.hash2 sibling !acc)
    p.siblings;
  Fr.equal !acc root

(* ---- in-circuit membership gadget ---- *)

(** Constrain that [leaf] sits at [path.leaf_index] under [root_wire].
    The siblings and direction bits become witnesses. *)
let assert_membership cs ~(root_wire : wire) ~(leaf : wire) (p : path) : unit =
  let acc = ref leaf in
  Array.iteri
    (fun d sibling_value ->
      let bit = (p.leaf_index lsr d) land 1 = 1 in
      let b = Gadgets.boolean cs bit in
      let sibling = Cs.fresh cs sibling_value in
      (* left = bit ? sibling : acc; right = bit ? acc : sibling *)
      let left = Gadgets.select cs b sibling !acc in
      let right = Gadgets.select cs b !acc sibling in
      acc := Poseidon_gadget.hash2 cs left right)
    p.siblings;
  Cs.assert_equal cs !acc root_wire
