(* Structured reference string: powers of a secret tau in G1 plus [tau]G2.
   In production the SRS comes from a multi-party ceremony ({!Ceremony});
   [unsafe_generate] plays the role of a locally simulated ceremony where
   the secret is sampled and immediately discarded. *)

module Fr = Zkdet_field.Bn254.Fr
module G1 = Zkdet_curve.G1
module G2 = Zkdet_curve.G2

type t = {
  g1_powers : G1.t array; (* [tau^0]G1 ... [tau^(n-1)]G1 *)
  g2 : G2.t; (* [1]G2 *)
  g2_tau : G2.t; (* [tau]G2 *)
}

let size t = Array.length t.g1_powers

(** Generate an SRS of [size] G1 powers from a locally sampled secret.
    The secret never escapes this function. *)
let unsafe_generate ?(st = Random.State.make_self_init ()) ~size () =
  if size < 2 then invalid_arg "Srs.unsafe_generate: size must be >= 2";
  let tau = Fr.random st in
  let table = G1.Fixed_base.create G1.generator in
  let g1_powers = Array.make size G1.zero in
  let pow = ref Fr.one in
  for i = 0 to size - 1 do
    g1_powers.(i) <- G1.Fixed_base.mul table !pow;
    pow := Fr.mul !pow tau
  done;
  { g1_powers; g2 = G2.generator; g2_tau = G2.mul G2.generator tau }

(** Check internal consistency: e(g1[i+1], G2) = e(g1[i], [tau]G2) on a few
    sampled indices (spot check) or all of them ([exhaustive]). *)
let verify ?(exhaustive = false) t =
  let n = size t in
  let check i =
    Zkdet_curve.Pairing.pairing_check
      [ (t.g1_powers.(i + 1), t.g2); (G1.neg t.g1_powers.(i), t.g2_tau) ]
  in
  let ok_first = G1.equal t.g1_powers.(0) G1.generator in
  let indices =
    if exhaustive then List.init (n - 1) Fun.id
    else
      List.sort_uniq Stdlib.compare
        [ 0; (n - 1) / 2; max 0 (n - 2) ]
  in
  ok_first && List.for_all check indices

(** Truncate to a smaller SRS (prefix of powers). *)
let truncate t n =
  if n > size t then invalid_arg "Srs.truncate: larger than source";
  { t with g1_powers = Array.sub t.g1_powers 0 n }
