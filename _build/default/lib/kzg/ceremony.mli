(** Simulated "Perpetual Powers of Tau" ceremony (the paper uses the
    Zcash/Semaphore one, §VI-B.1). Sequential multi-party contributions
    with Schnorr proofs of knowledge and pairing consistency checks; any
    single honest participant suffices for soundness. *)

module Fr = Zkdet_field.Bn254.Fr
module G1 = Zkdet_curve.G1
module G2 = Zkdet_curve.G2

type contribution_proof = {
  s_g1 : G1.t;  (** [s]G1 *)
  s_g2 : G2.t;  (** [s]G2 *)
  schnorr_commit : G1.t;
  schnorr_response : Fr.t;
}

type transcript_entry = {
  contributor : string;
  proof : contribution_proof;
  g1_tau_after : G1.t;
  g2_tau_after : G2.t;
}

type state = { srs : Srs.t; transcript : transcript_entry list }

val initial : size:int -> state
(** The identity accumulator (tau = 1). *)

val contribute : ?st:Random.State.t -> contributor:string -> state -> state
(** Re-randomize the accumulator with a private factor sampled internally
    and append a verifiable transcript entry. *)

val verify_link : prev_g1_tau:G1.t -> transcript_entry -> bool
(** Check one contribution extends the previous accumulator honestly. *)

val verify_transcript : state -> bool
(** Check the whole chain of contributions plus the final SRS's internal
    consistency. *)
