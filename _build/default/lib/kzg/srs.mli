(** Structured reference string for KZG commitments: powers of a secret
    tau in G1 plus [tau]G2 (paper §VI-B.1's "updatable universal SRS"). *)

module Fr = Zkdet_field.Bn254.Fr
module G1 = Zkdet_curve.G1
module G2 = Zkdet_curve.G2

type t = {
  g1_powers : G1.t array;  (** [tau^0]G1 .. [tau^(n-1)]G1 *)
  g2 : G2.t;  (** [1]G2 *)
  g2_tau : G2.t;  (** [tau]G2 *)
}

val size : t -> int

val unsafe_generate : ?st:Random.State.t -> size:int -> unit -> t
(** Locally simulated trusted setup: samples tau, computes the powers,
    discards the secret. Production SRS comes from {!Ceremony}. *)

val verify : ?exhaustive:bool -> t -> bool
(** Pairing consistency check e(g1[i+1], G2) = e(g1[i], [tau]G2); spot
    checks a few indices unless [exhaustive]. *)

val truncate : t -> int -> t
(** Prefix of the G1 powers (smaller circuits under the same setup). *)
