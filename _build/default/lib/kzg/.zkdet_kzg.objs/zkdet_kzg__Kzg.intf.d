lib/kzg/kzg.mli: Srs Zkdet_curve Zkdet_field Zkdet_poly
