lib/kzg/srs.ml: Array Fun List Random Stdlib Zkdet_curve Zkdet_field
