lib/kzg/srs.mli: Random Zkdet_curve Zkdet_field
