lib/kzg/ceremony.mli: Random Srs Zkdet_curve Zkdet_field
