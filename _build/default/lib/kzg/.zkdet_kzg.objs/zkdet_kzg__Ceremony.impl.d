lib/kzg/ceremony.ml: Array List Random Srs Zkdet_curve Zkdet_field Zkdet_hash Zkdet_num
