lib/kzg/kzg.ml: Array List Srs Zkdet_curve Zkdet_field Zkdet_poly
