(* Multiplicative-subgroup evaluation domains over the BN254 scalar field,
   with radix-2 (I)FFT and coset variants used by the Plonk quotient
   computation. *)

module Fr = Zkdet_field.Bn254.Fr

type t = {
  log2size : int;
  size : int;
  omega : Fr.t;
  omega_inv : Fr.t;
  size_inv : Fr.t;
  shift : Fr.t; (* coset generator for coset_fft *)
  shift_inv : Fr.t;
}

let create log2size =
  if log2size < 0 || log2size > Fr.two_adicity then
    invalid_arg "Domain.create: size beyond the field's 2-adicity";
  let size = 1 lsl log2size in
  let omega = Fr.root_of_unity ~log2size in
  let shift = Fr.coset_shift in
  (* The coset gH must be disjoint from H: shift^size <> 1. *)
  assert (not (Fr.is_one (Fr.pow shift size)));
  {
    log2size;
    size;
    omega;
    omega_inv = Fr.inv omega;
    size_inv = Fr.inv (Fr.of_int size);
    shift;
    shift_inv = Fr.inv shift;
  }

let size d = d.size
let log2size d = d.log2size
let omega d = d.omega
let shift d = d.shift

(** [element d i] is omega^i. *)
let element d i = Fr.pow d.omega (i mod d.size)

(** All domain elements in order. *)
let elements d =
  let a = Array.make d.size Fr.one in
  for i = 1 to d.size - 1 do
    a.(i) <- Fr.mul a.(i - 1) d.omega
  done;
  a

let bit_reverse_permute (a : 'a array) =
  let n = Array.length a in
  let log_n =
    let rec go k = if 1 lsl k = n then k else go (k + 1) in
    go 0
  in
  for i = 0 to n - 1 do
    let j =
      let r = ref 0 in
      for b = 0 to log_n - 1 do
        if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (log_n - 1 - b))
      done;
      !r
    in
    if i < j then begin
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    end
  done

let fft_in_place (a : Fr.t array) (omega : Fr.t) =
  let n = Array.length a in
  bit_reverse_permute a;
  let len = ref 2 in
  while !len <= n do
    let w_len = Fr.pow omega (n / !len) in
    let half = !len / 2 in
    let i = ref 0 in
    while !i < n do
      let w = ref Fr.one in
      for j = 0 to half - 1 do
        let u = a.(!i + j) in
        let v = Fr.mul a.(!i + j + half) !w in
        a.(!i + j) <- Fr.add u v;
        a.(!i + j + half) <- Fr.sub u v;
        w := Fr.mul !w w_len
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

(** [fft d coeffs] evaluates the polynomial with coefficient vector
    [coeffs] (padded/truncated to the domain size) at every domain element,
    in order omega^0, omega^1, ... *)
let fft d coeffs =
  let a = Array.make d.size Fr.zero in
  Array.blit coeffs 0 a 0 (min (Array.length coeffs) d.size);
  if Array.length coeffs > d.size then
    invalid_arg "Domain.fft: polynomial larger than domain";
  fft_in_place a d.omega;
  a

(** Inverse FFT: evaluations on the domain back to coefficients. *)
let ifft d evals =
  if Array.length evals <> d.size then invalid_arg "Domain.ifft: size mismatch";
  let a = Array.copy evals in
  fft_in_place a d.omega_inv;
  Array.map (fun x -> Fr.mul x d.size_inv) a

(** Evaluations on the coset (shift * H). *)
let coset_fft d coeffs =
  let a = Array.make d.size Fr.zero in
  Array.blit coeffs 0 a 0 (min (Array.length coeffs) d.size);
  if Array.length coeffs > d.size then
    invalid_arg "Domain.coset_fft: polynomial larger than domain";
  let g = ref Fr.one in
  for i = 0 to d.size - 1 do
    a.(i) <- Fr.mul a.(i) !g;
    g := Fr.mul !g d.shift
  done;
  fft_in_place a d.omega;
  a

let coset_ifft d evals =
  let a = ifft d evals in
  let g = ref Fr.one in
  for i = 0 to d.size - 1 do
    a.(i) <- Fr.mul a.(i) !g;
    g := Fr.mul !g d.shift_inv
  done;
  a

(** Z_H(x) = x^n - 1. *)
let vanishing_eval d x = Fr.sub (Fr.pow x d.size) Fr.one

(** L_i(x) = omega^i (x^n - 1) / (n (x - omega^i)), the i-th Lagrange basis
    polynomial of the domain, evaluated outside the domain. *)
let lagrange_eval d i x =
  let wi = element d i in
  let num = Fr.mul wi (vanishing_eval d x) in
  let den = Fr.mul (Fr.of_int d.size) (Fr.sub x wi) in
  Fr.div num den
