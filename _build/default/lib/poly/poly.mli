(** Dense univariate polynomials over the BN254 scalar field.
    Little-endian coefficients; trailing zeros tolerated. *)

module Fr = Zkdet_field.Bn254.Fr

type t = Fr.t array

val zero : t
val one : t
val of_coeffs : Fr.t array -> t
val coeffs : t -> Fr.t array
val constant : Fr.t -> t

val degree : t -> int
(** -1 for the zero polynomial. *)

val is_zero : t -> bool
val coeff : t -> int -> Fr.t
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Fr.t -> t -> t

val shift : int -> t -> t
(** [shift k p] = [x^k * p]. *)

val mul : t -> t -> t
(** Schoolbook below degree ~64, FFT above. *)

val eval : t -> Fr.t -> Fr.t

val div_by_linear : t -> Fr.t -> t
(** [div_by_linear p z] = [p / (X - z)]; requires [p(z) = 0] (raises
    [Invalid_argument] otherwise). The KZG witness computation. *)

val divmod : t -> t -> t * t

val div_by_vanishing : t -> int -> t
(** Exact division by [X^n - 1]; raises [Invalid_argument] if not
    divisible. *)

val random : Random.State.t -> int -> t

val interpolate : (Fr.t * Fr.t) list -> t
(** Lagrange interpolation (O(n^2); tests and small fixed cases only). *)

val pp : Format.formatter -> t -> unit
