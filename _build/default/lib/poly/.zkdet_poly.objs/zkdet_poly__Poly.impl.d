lib/poly/poly.ml: Array Domain Format List Zkdet_field
