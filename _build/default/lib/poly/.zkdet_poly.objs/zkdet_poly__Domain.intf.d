lib/poly/domain.mli: Zkdet_field
