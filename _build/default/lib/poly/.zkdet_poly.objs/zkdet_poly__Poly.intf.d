lib/poly/poly.mli: Format Random Zkdet_field
