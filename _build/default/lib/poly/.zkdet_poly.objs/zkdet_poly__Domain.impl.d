lib/poly/domain.ml: Array Zkdet_field
