lib/field/bn254.ml: Montgomery Zkdet_num
