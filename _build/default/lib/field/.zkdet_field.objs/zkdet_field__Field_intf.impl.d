lib/field/field_intf.ml: Format Random Zkdet_num
