lib/field/montgomery.ml: Array Field_intf Format Random Zkdet_num
