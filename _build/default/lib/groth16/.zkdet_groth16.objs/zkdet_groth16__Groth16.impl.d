lib/groth16/groth16.ml: Array List Random Zkdet_curve Zkdet_field Zkdet_num Zkdet_plonk Zkdet_poly
