lib/groth16/groth16.mli: Random Zkdet_curve Zkdet_field Zkdet_plonk Zkdet_poly
