(** x^5-Poseidon-128 over the BN254 scalar field (paper §IV-C.2).

    Width-3 permutation with R_F = 8 full and R_P = 60 partial rounds —
    the recommended 128-bit setting the paper cites. Used as the
    commitment primitive [Commit(m) = (H(o :: m), o)] and as the hash in
    h_v = H(k_v) of the key-secure exchange. *)

module Fr = Zkdet_field.Bn254.Fr

val width : int
val full_rounds : int
val partial_rounds : int
val total_rounds : int

val round_constants : Fr.t array
(** [total_rounds * width] constants from a SHA-256 counter-mode PRG
    (substitution for the reference Grain LFSR; see DESIGN.md). *)

val mds : Fr.t array array
(** The MDS matrix: the Cauchy construction 1/(x_i + y_j). *)

val pow5 : Fr.t -> Fr.t

val permute : Fr.t array -> Fr.t array
(** The Poseidon permutation on a width-3 state. Raises
    [Invalid_argument] on wrong state width. *)

val hash : Fr.t list -> Fr.t
(** Sponge hash (rate 2, capacity 1) with input-length domain separation
    in the capacity element. *)

val hash2 : Fr.t -> Fr.t -> Fr.t
(** Two-to-one compression for Merkle trees. *)

(** Hiding, binding commitments (Definitions 2.1-2.3 of the paper). *)
module Commitment : sig
  type opening = Fr.t

  val commit : ?st:Random.State.t -> Fr.t list -> Fr.t * opening
  (** [commit msgs] samples a fresh opening and returns
      [(H(o :: msgs), o)]. *)

  val commit_with : Fr.t list -> opening -> Fr.t
  (** Deterministic commitment under a caller-chosen opening. *)

  val verify : Fr.t list -> Fr.t -> opening -> bool
  (** [verify msgs c o] is [Open(msgs, c, o)] of Definition 2.1. *)
end
