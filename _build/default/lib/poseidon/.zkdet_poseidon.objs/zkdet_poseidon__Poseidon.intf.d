lib/poseidon/poseidon.mli: Random Zkdet_field
