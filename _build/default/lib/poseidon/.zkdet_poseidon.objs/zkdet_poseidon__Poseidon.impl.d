lib/poseidon/poseidon.ml: Array List Printf Random Zkdet_field Zkdet_hash
