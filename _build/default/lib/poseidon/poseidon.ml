(* x^5-Poseidon-128 over the BN254 scalar field (paper §IV-C.2, §VI-A):
   width w = 3, R_F = 8 full rounds, R_P = 60 partial rounds — the
   recommended 128-bit setting the paper cites.

   Round constants come from a SHA-256 counter-mode PRG (the reference uses
   the Grain LFSR; see DESIGN.md for why this substitution is benign). The
   MDS matrix is the Cauchy matrix 1/(x_i + y_j), the construction from the
   Poseidon paper. *)

module Fr = Zkdet_field.Bn254.Fr
module Sha256 = Zkdet_hash.Sha256

let width = 3
let full_rounds = 8
let partial_rounds = 60
let total_rounds = full_rounds + partial_rounds

let round_constants =
  Array.init (total_rounds * width) (fun i ->
      Fr.of_bytes_be (Sha256.digest (Printf.sprintf "zkdet-poseidon-rc/%d" i)))

let mds =
  Array.init width (fun i ->
      Array.init width (fun j ->
          Fr.inv (Fr.of_int (i + (width + j) + 1))))

let pow5 x =
  let x2 = Fr.sqr x in
  let x4 = Fr.sqr x2 in
  Fr.mul x4 x

let apply_mds (state : Fr.t array) : Fr.t array =
  Array.init width (fun i ->
      let acc = ref Fr.zero in
      for j = 0 to width - 1 do
        acc := Fr.add !acc (Fr.mul mds.(i).(j) state.(j))
      done;
      !acc)

(** The Poseidon permutation on a width-3 state. *)
let permute (state : Fr.t array) : Fr.t array =
  if Array.length state <> width then invalid_arg "Poseidon.permute: width";
  let s = ref (Array.copy state) in
  let half_full = full_rounds / 2 in
  for r = 0 to total_rounds - 1 do
    let st = !s in
    for j = 0 to width - 1 do
      st.(j) <- Fr.add st.(j) round_constants.((r * width) + j)
    done;
    if r < half_full || r >= half_full + partial_rounds then
      for j = 0 to width - 1 do
        st.(j) <- pow5 st.(j)
      done
    else st.(0) <- pow5 st.(0);
    s := apply_mds st
  done;
  !s

(** Sponge hash with rate 2, capacity 1. The capacity element is
    initialized with a domain tag encoding the input length. *)
let hash (inputs : Fr.t list) : Fr.t =
  let n = List.length inputs in
  let state = [| Fr.zero; Fr.zero; Fr.of_int ((n * 2) + 1) |] in
  let rec absorb state = function
    | [] -> state
    | [ x ] ->
      let state = Array.copy state in
      state.(0) <- Fr.add state.(0) x;
      permute state
    | x :: y :: rest ->
      let state = Array.copy state in
      state.(0) <- Fr.add state.(0) x;
      state.(1) <- Fr.add state.(1) y;
      absorb (permute state) rest
  in
  let final = if n = 0 then permute state else absorb state inputs in
  final.(0)

(** Two-to-one compression for Merkle trees. *)
let hash2 a b = hash [ a; b ]

(** Hiding commitment: [commit msgs o = H(o :: msgs)] (paper Def. 2.1, with
    Poseidon as the binding/hiding primitive of §IV-C.2). *)
module Commitment = struct
  type opening = Fr.t

  let commit ?(st = Random.State.make_self_init ()) (msgs : Fr.t list) :
      Fr.t * opening =
    let o = Fr.random st in
    (hash (o :: msgs), o)

  let commit_with (msgs : Fr.t list) (o : opening) : Fr.t = hash (o :: msgs)

  let verify (msgs : Fr.t list) (c : Fr.t) (o : opening) : bool =
    Fr.equal c (hash (o :: msgs))
end
