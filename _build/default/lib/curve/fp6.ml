(* Fp6 = Fp2[v] / (v^3 - xi), xi = 9 + u. *)

type t = { c0 : Fp2.t; c1 : Fp2.t; c2 : Fp2.t }

let make c0 c1 c2 = { c0; c1; c2 }
let zero = { c0 = Fp2.zero; c1 = Fp2.zero; c2 = Fp2.zero }
let one = { c0 = Fp2.one; c1 = Fp2.zero; c2 = Fp2.zero }
let of_fp2 c0 = { c0; c1 = Fp2.zero; c2 = Fp2.zero }

let equal a b = Fp2.equal a.c0 b.c0 && Fp2.equal a.c1 b.c1 && Fp2.equal a.c2 b.c2
let is_zero a = equal a zero
let is_one a = equal a one

let add a b =
  { c0 = Fp2.add a.c0 b.c0; c1 = Fp2.add a.c1 b.c1; c2 = Fp2.add a.c2 b.c2 }

let sub a b =
  { c0 = Fp2.sub a.c0 b.c0; c1 = Fp2.sub a.c1 b.c1; c2 = Fp2.sub a.c2 b.c2 }

let neg a = { c0 = Fp2.neg a.c0; c1 = Fp2.neg a.c1; c2 = Fp2.neg a.c2 }
let double a = add a a

let mul a b =
  let v0 = Fp2.mul a.c0 b.c0 in
  let v1 = Fp2.mul a.c1 b.c1 in
  let v2 = Fp2.mul a.c2 b.c2 in
  (* c0 = v0 + xi((a1+a2)(b1+b2) - v1 - v2) *)
  let t0 =
    Fp2.mul (Fp2.add a.c1 a.c2) (Fp2.add b.c1 b.c2)
  in
  let c0 = Fp2.add v0 (Fp2.mul_by_xi (Fp2.sub (Fp2.sub t0 v1) v2)) in
  (* c1 = (a0+a1)(b0+b1) - v0 - v1 + xi v2 *)
  let t1 = Fp2.mul (Fp2.add a.c0 a.c1) (Fp2.add b.c0 b.c1) in
  let c1 = Fp2.add (Fp2.sub (Fp2.sub t1 v0) v1) (Fp2.mul_by_xi v2) in
  (* c2 = (a0+a2)(b0+b2) - v0 - v2 + v1 *)
  let t2 = Fp2.mul (Fp2.add a.c0 a.c2) (Fp2.add b.c0 b.c2) in
  let c2 = Fp2.add (Fp2.sub (Fp2.sub t2 v0) v2) v1 in
  { c0; c1; c2 }

let sqr a = mul a a

(* Multiplication by v: (c0 + c1 v + c2 v^2) v = xi c2 + c0 v + c1 v^2. *)
let mul_by_v a = { c0 = Fp2.mul_by_xi a.c2; c1 = a.c0; c2 = a.c1 }

let scale_fp2 a (k : Fp2.t) =
  { c0 = Fp2.mul a.c0 k; c1 = Fp2.mul a.c1 k; c2 = Fp2.mul a.c2 k }

let scale_fp a (k : Fp2.Fp.t) =
  { c0 = Fp2.scale_fp a.c0 k; c1 = Fp2.scale_fp a.c1 k; c2 = Fp2.scale_fp a.c2 k }

let inv a =
  (* Standard cubic-extension inversion. *)
  let t0 = Fp2.sub (Fp2.sqr a.c0) (Fp2.mul_by_xi (Fp2.mul a.c1 a.c2)) in
  let t1 = Fp2.sub (Fp2.mul_by_xi (Fp2.sqr a.c2)) (Fp2.mul a.c0 a.c1) in
  let t2 = Fp2.sub (Fp2.sqr a.c1) (Fp2.mul a.c0 a.c2) in
  let norm =
    Fp2.add (Fp2.mul a.c0 t0)
      (Fp2.mul_by_xi (Fp2.add (Fp2.mul a.c2 t1) (Fp2.mul a.c1 t2)))
  in
  let ninv = Fp2.inv norm in
  { c0 = Fp2.mul t0 ninv; c1 = Fp2.mul t1 ninv; c2 = Fp2.mul t2 ninv }

(* Frobenius: v^p = gamma1 v with gamma1 = xi^((p-1)/3);
   (v^2)^p = gamma2 v^2 with gamma2 = gamma1^2. *)
module Nat = Zkdet_num.Nat

let p_nat = Fp2.Fp.modulus

let gamma1 = Fp2.pow_nat Fp2.xi (Nat.div (Nat.sub p_nat Nat.one) (Nat.of_int 3))
let gamma2 = Fp2.sqr gamma1

let frobenius a =
  {
    c0 = Fp2.frobenius a.c0;
    c1 = Fp2.mul (Fp2.frobenius a.c1) gamma1;
    c2 = Fp2.mul (Fp2.frobenius a.c2) gamma2;
  }

let random st = { c0 = Fp2.random st; c1 = Fp2.random st; c2 = Fp2.random st }

let to_bytes a = Fp2.to_bytes a.c0 ^ Fp2.to_bytes a.c1 ^ Fp2.to_bytes a.c2

let pp fmt a =
  Format.fprintf fmt "[%a, %a, %a]" Fp2.pp a.c0 Fp2.pp a.c1 Fp2.pp a.c2
