lib/curve/pairing.mli: Format Fp12 G1 G2 Zkdet_field Zkdet_num
