lib/curve/pairing.ml: Fp12 Fp2 Fp6 G1 G2 List Zkdet_field Zkdet_num
