lib/curve/g2.ml: Fp2 Weierstrass Zkdet_field
