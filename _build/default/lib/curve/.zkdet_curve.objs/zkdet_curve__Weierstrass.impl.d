lib/curve/weierstrass.ml: Array Format String Zkdet_field Zkdet_num
