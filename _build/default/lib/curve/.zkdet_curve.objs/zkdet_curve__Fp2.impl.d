lib/curve/fp2.ml: Format String Zkdet_field Zkdet_num
