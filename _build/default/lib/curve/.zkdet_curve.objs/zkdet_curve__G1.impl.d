lib/curve/g1.ml: Printf String Weierstrass Zkdet_field Zkdet_hash Zkdet_num
