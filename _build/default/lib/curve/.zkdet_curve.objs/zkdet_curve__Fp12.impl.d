lib/curve/fp12.ml: Format Fp2 Fp6 Zkdet_num
