lib/curve/fp6.ml: Format Fp2 Zkdet_num
