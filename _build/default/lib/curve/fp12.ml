(* Fp12 = Fp6[w] / (w^2 - v). Target group of the pairing. *)

module Nat = Zkdet_num.Nat

type t = { c0 : Fp6.t; c1 : Fp6.t }

let make c0 c1 = { c0; c1 }
let zero = { c0 = Fp6.zero; c1 = Fp6.zero }
let one = { c0 = Fp6.one; c1 = Fp6.zero }
let of_fp6 c0 = { c0; c1 = Fp6.zero }
let of_fp c = of_fp6 (Fp6.of_fp2 (Fp2.of_fp c))

let equal a b = Fp6.equal a.c0 b.c0 && Fp6.equal a.c1 b.c1
let is_zero a = equal a zero
let is_one a = equal a one

let add a b = { c0 = Fp6.add a.c0 b.c0; c1 = Fp6.add a.c1 b.c1 }
let sub a b = { c0 = Fp6.sub a.c0 b.c0; c1 = Fp6.sub a.c1 b.c1 }
let neg a = { c0 = Fp6.neg a.c0; c1 = Fp6.neg a.c1 }

let mul a b =
  (* Karatsuba with w^2 = v. *)
  let v0 = Fp6.mul a.c0 b.c0 in
  let v1 = Fp6.mul a.c1 b.c1 in
  let s = Fp6.mul (Fp6.add a.c0 a.c1) (Fp6.add b.c0 b.c1) in
  { c0 = Fp6.add v0 (Fp6.mul_by_v v1); c1 = Fp6.sub (Fp6.sub s v0) v1 }

let sqr a = mul a a

let scale_fp a k = { c0 = Fp6.scale_fp a.c0 k; c1 = Fp6.scale_fp a.c1 k }

let inv a =
  (* (a0 + a1 w)^-1 = (a0 - a1 w) / (a0^2 - v a1^2) *)
  let norm = Fp6.sub (Fp6.sqr a.c0) (Fp6.mul_by_v (Fp6.sqr a.c1)) in
  let ninv = Fp6.inv norm in
  { c0 = Fp6.mul a.c0 ninv; c1 = Fp6.neg (Fp6.mul a.c1 ninv) }

(* Conjugation over Fp6 = the p^6 Frobenius (cheap). *)
let conj a = { a with c1 = Fp6.neg a.c1 }

(* Frobenius: w^p = gamma_w w with gamma_w = xi^((p-1)/6) in Fp2. *)
let gamma_w =
  Fp2.pow_nat Fp2.xi (Nat.div (Nat.sub Fp2.Fp.modulus Nat.one) (Nat.of_int 6))

let frobenius a =
  { c0 = Fp6.frobenius a.c0; c1 = Fp6.scale_fp2 (Fp6.frobenius a.c1) gamma_w }

let pow_nat x e =
  let nbits = Nat.num_bits e in
  if nbits = 0 then one
  else begin
    let acc = ref one in
    for i = nbits - 1 downto 0 do
      acc := sqr !acc;
      if Nat.testbit e i then acc := mul !acc x
    done;
    !acc
  end

let random st = { c0 = Fp6.random st; c1 = Fp6.random st }

let to_bytes a = Fp6.to_bytes a.c0 ^ Fp6.to_bytes a.c1

let pp fmt a = Format.fprintf fmt "{%a; %a}" Fp6.pp a.c0 Fp6.pp a.c1
