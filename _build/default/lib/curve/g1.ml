(* G1: y^2 = x^3 + 3 over Fp, generator (1, 2), prime order r (cofactor 1). *)

module Fp = Zkdet_field.Bn254.Fp

module Fp_curve = struct
  include Fp

  let to_bytes = Fp.to_bytes_be
  let of_bytes = Fp.of_bytes_be
end

include Weierstrass.Make (struct
  module F = Fp_curve

  let b = Fp.of_int 3
  let generator = (Fp.one, Fp.of_int 2)
end)

(* Compressed serialization: a parity tag plus the x coordinate; y is
   recovered as sqrt(x^3 + 3) with the tagged parity. 33 bytes instead of
   65. *)
let compressed_size = 1 + Fp.num_bytes

let y_parity y = Zkdet_num.Nat.testbit (Fp.to_nat y) 0

let to_bytes_compressed p =
  match to_affine p with
  | None -> "\x00" ^ String.make Fp.num_bytes '\x00'
  | Some (x, y) ->
    (if y_parity y then "\x03" else "\x02") ^ Fp.to_bytes_be x

let of_bytes_compressed (s : string) : t =
  if String.length s <> compressed_size then
    invalid_arg "G1.of_bytes_compressed: bad length";
  match s.[0] with
  | '\x00' -> zero
  | ('\x02' | '\x03') as tag ->
    let x = Fp.of_bytes_be (String.sub s 1 Fp.num_bytes) in
    let y2 = Fp.add (Fp.mul (Fp.sqr x) x) (Fp.of_int 3) in
    (match Fp.sqrt y2 with
    | None -> invalid_arg "G1.of_bytes_compressed: x not on curve"
    | Some y ->
      let want_odd = tag = '\x03' in
      let y = if y_parity y = want_odd then y else Fp.neg y in
      of_affine (x, y))
  | _ -> invalid_arg "G1.of_bytes_compressed: bad tag"

(* Try-and-increment hash-to-curve: deterministic map from a label to a
   curve point of unknown discrete log (used for commitment bases). *)
let hash_to_curve (label : string) : t =
  let rec try_x counter =
    let h = Zkdet_hash.Sha256.digest (Printf.sprintf "%s/%d" label counter) in
    let x = Fp.of_bytes_be h in
    let y2 = Fp.add (Fp.mul (Fp.sqr x) x) (Fp.of_int 3) in
    match Fp.sqrt y2 with
    | Some y -> of_affine (x, y)
    | None -> try_x (counter + 1)
  in
  try_x 0
