(** The (reduced) Tate pairing e : G1 x G2 -> GT on BN254.

    Miller loop f_(r,P)(Q) with P in G1 (point arithmetic stays in Fp) and
    Q embedded into E(Fp12) through the sextic twist; the final
    exponentiation makes the result bilinear and well-defined. Bilinearity
    and non-degeneracy are property-tested. *)

module Fr = Zkdet_field.Bn254.Fr

(** The target group (the r-th roots of unity in Fp12). *)
module Gt : sig
  type t

  val one : t
  val equal : t -> t -> bool
  val is_one : t -> bool
  val mul : t -> t -> t
  val inv : t -> t
  val pow_nat : t -> Zkdet_num.Nat.t -> t
  val pow : t -> Fr.t -> t
  val to_bytes : t -> string
  val pp : Format.formatter -> t -> unit
end

val miller_loop : G1.t -> G2.t -> Fp12.t
val final_exponentiation : Fp12.t -> Gt.t

val pairing : G1.t -> G2.t -> Gt.t

val pairing_check : (G1.t * G2.t) list -> bool
(** [true] iff the product of pairings is the identity — the form used by
    KZG/Plonk verifiers (one shared final exponentiation). *)
