(** MiMC-p/p block cipher over the BN254 scalar field (paper §IV-C.1).

    91 rounds with the x^7 permutation — the circuit-friendly cipher ZKDET
    uses so that proofs of encryption stay small (4 multiplication gates
    per round instead of the thousands AES would need). *)

module Fr = Zkdet_field.Bn254.Fr

val rounds : int
(** Number of rounds (91 = ceil(254 / log2 7)). *)

val degree : int
(** S-box degree (7). *)

val round_constants : Fr.t array
(** Public round constants, derived from SHA-256 in counter mode
    (nothing-up-my-sleeve; see DESIGN.md). [round_constants.(0)] is zero
    per the MiMC specification. *)

val pow7 : Fr.t -> Fr.t
(** The round S-box [x -> x^7]. *)

val encrypt_block : Fr.t -> Fr.t -> Fr.t
(** [encrypt_block k m] is the keyed MiMC permutation E_k(m). *)

val decrypt_block : Fr.t -> Fr.t -> Fr.t
(** Inverse permutation (x^(1/7) per round); only used by tests — CTR mode
    never needs it. *)

(** Counter-mode stream encryption of field-element datasets:
    [ct_i = pt_i + E_k(nonce + i)] (paper §IV-C.1). *)
module Ctr : sig
  val keystream : Fr.t -> Fr.t -> int -> Fr.t
  (** [keystream k nonce i] = E_k(nonce + i). *)

  val encrypt : key:Fr.t -> nonce:Fr.t -> Fr.t array -> Fr.t array
  val decrypt : key:Fr.t -> nonce:Fr.t -> Fr.t array -> Fr.t array
end

val hash : Fr.t list -> Fr.t
(** Miyaguchi–Preneel style hash over the MiMC permutation; a cheap
    in-circuit alternative to Poseidon. *)
