lib/mimc/mimc.ml: Array List Printf Zkdet_field Zkdet_hash Zkdet_num
