lib/mimc/mimc.mli: Zkdet_field
