(* MiMC-p/p block cipher over the BN254 scalar field (paper §IV-C.1, §VI-A):
   r = 91 rounds, non-linear permutation x^7. 91 = ceil(254 / log2 7) rounds
   give full algebraic degree; the paper quotes the same (r, d) pair.

   Round constants are derived from SHA-256 in counter mode — a transparent
   nothing-up-my-sleeve construction standing in for the reference
   implementation's constants (the security argument only needs "random"
   constants; see DESIGN.md). *)

module Fr = Zkdet_field.Bn254.Fr
module Sha256 = Zkdet_hash.Sha256

let rounds = 91
let degree = 7

let round_constants =
  Array.init rounds (fun i ->
      if i = 0 then Fr.zero
      else Fr.of_bytes_be (Sha256.digest (Printf.sprintf "zkdet-mimc-rc/%d" i)))

let pow7 x =
  let x2 = Fr.sqr x in
  let x4 = Fr.sqr x2 in
  Fr.mul (Fr.mul x4 x2) x

(** The keyed MiMC permutation E_k. *)
let encrypt_block (k : Fr.t) (m : Fr.t) : Fr.t =
  let s = ref m in
  for i = 0 to rounds - 1 do
    s := pow7 (Fr.add (Fr.add !s k) round_constants.(i))
  done;
  Fr.add !s k

(* Decryption inverts each round with x^(1/7); only used in tests — CTR
   mode below never needs the inverse permutation. *)
let seventh_root_exponent =
  (* d * e = 1 mod (r - 1) *)
  let open Zkdet_num.Nat in
  let phi = sub Fr.modulus one in
  let rec find e = (* e = (1 + k*phi)/7 for the k making it integral *)
    let num = add one (mul (of_int e) phi) in
    let q, rem = divmod num (of_int degree) in
    if is_zero rem then q else find (e + 1)
  in
  find 1

let pow_inv7 x = Fr.pow_nat x seventh_root_exponent

let decrypt_block (k : Fr.t) (c : Fr.t) : Fr.t =
  let s = ref (Fr.sub c k) in
  for i = rounds - 1 downto 0 do
    s := Fr.sub (Fr.sub (pow_inv7 !s) k) round_constants.(i)
  done;
  !s

(** MiMC-CTR stream encryption of a field-element dataset:
    ct_i = pt_i + E_k(nonce + i). Symmetric: decryption = same keystream
    subtracted. *)
module Ctr = struct
  let keystream (k : Fr.t) (nonce : Fr.t) (i : int) : Fr.t =
    encrypt_block k (Fr.add nonce (Fr.of_int i))

  let encrypt ~key ~nonce (data : Fr.t array) : Fr.t array =
    Array.mapi (fun i d -> Fr.add d (keystream key nonce i)) data

  let decrypt ~key ~nonce (data : Fr.t array) : Fr.t array =
    Array.mapi (fun i c -> Fr.sub c (keystream key nonce i)) data
end

(** MiMC as a hash (Miyaguchi–Preneel style sponge over the permutation),
    handy as a cheap in-circuit hash alternative. *)
let hash (inputs : Fr.t list) : Fr.t =
  List.fold_left
    (fun acc x -> Fr.add (Fr.add (encrypt_block acc x) x) acc)
    (Fr.of_bytes_be (Sha256.digest "zkdet-mimc-hash-iv"))
    inputs
