lib/num/nat.ml: Array Buffer Char Format List Printf Stdlib String
