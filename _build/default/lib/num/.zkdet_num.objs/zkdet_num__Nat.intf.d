lib/num/nat.mli: Format
