let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

(* Invariant: little-endian limbs, each in [0, base), no trailing zero limb.
   zero is the empty array. *)
type t = int array

let zero : t = [||]
let is_zero n = Array.length n = 0

let normalize (a : int array) : t =
  let k = ref (Array.length a) in
  while !k > 0 && a.(!k - 1) = 0 do
    decr k
  done;
  if !k = Array.length a then a else Array.sub a 0 !k

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc n = if n = 0 then acc else count (acc + 1) (n lsr limb_bits) in
    let len = count 0 n in
    let a = Array.make len 0 in
    let rec fill i n =
      if n <> 0 then begin
        a.(i) <- n land mask;
        fill (i + 1) (n lsr limb_bits)
      end
    in
    fill 0 n;
    a
  end

let one = of_int 1
let two = of_int 2

let to_int n =
  (* A native int holds at most 62 bits: 3 limbs only if the top limb is
     small enough. *)
  let len = Array.length n in
  if len > 3 then None
  else begin
    let v = ref 0 and ok = ref true in
    for i = len - 1 downto 0 do
      if !v > max_int lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor n.(i)
    done;
    if !ok then Some !v else None
  end

let num_limbs = Array.length
let limb n i = if i < Array.length n then n.(i) else 0

let of_limbs a = normalize (Array.copy a)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = limb a i + limb b i + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - limb b i - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land mask;
        carry := s lsr limb_bits
      done;
      (* Propagate the final carry; it can exceed one limb. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land mask;
        carry := s lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let num_bits n =
  let len = Array.length n in
  if len = 0 then 0
  else begin
    let top = n.(len - 1) in
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    ((len - 1) * limb_bits) + width 0 top
  end

let testbit n i =
  if i < 0 then invalid_arg "Nat.testbit";
  let w = i / limb_bits and b = i mod limb_bits in
  (limb n w lsr b) land 1 = 1

let shift_left n k =
  if k < 0 then invalid_arg "Nat.shift_left";
  if is_zero n || k = 0 then n
  else begin
    let wk = k / limb_bits and bk = k mod limb_bits in
    let len = Array.length n in
    let r = Array.make (len + wk + 1) 0 in
    for i = 0 to len - 1 do
      let v = n.(i) lsl bk in
      r.(i + wk) <- r.(i + wk) lor (v land mask);
      r.(i + wk + 1) <- r.(i + wk + 1) lor (v lsr limb_bits)
    done;
    normalize r
  end

let shift_right n k =
  if k < 0 then invalid_arg "Nat.shift_right";
  if is_zero n || k = 0 then n
  else begin
    let wk = k / limb_bits and bk = k mod limb_bits in
    let len = Array.length n in
    if wk >= len then zero
    else begin
      let r = Array.make (len - wk) 0 in
      for i = 0 to len - wk - 1 do
        let lo = n.(i + wk) lsr bk in
        let hi =
          if bk = 0 || i + wk + 1 >= len then 0
          else (n.(i + wk + 1) lsl (limb_bits - bk)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Binary long division: O(bits(a) * limbs(a)). Division only runs during
   parameter derivation and radix conversion, never in proving hot paths. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let shift = num_bits a - num_bits b in
    let q = Array.make (shift / limb_bits + 1) 0 in
    let r = ref a in
    for i = shift downto 0 do
      let d = shift_left b i in
      if compare !r d >= 0 then begin
        r := sub !r d;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Nat.pow";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let of_decimal s =
  if String.length s = 0 then invalid_arg "Nat.of_decimal: empty";
  let acc = ref zero in
  let ten = of_int 10 in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Nat.of_decimal: bad digit";
      acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0')))
    s;
  !acc

let to_decimal n =
  if is_zero n then "0"
  else begin
    (* Peel off 7 decimal digits at a time via division by 10^7. *)
    let chunk = of_int 10_000_000 in
    let buf = Buffer.create 80 in
    let rec go n parts =
      if is_zero n then parts
      else begin
        let q, r = divmod n chunk in
        let digits = match to_int r with Some v -> v | None -> assert false in
        go q (digits :: parts)
      end
    in
    match go n [] with
    | [] -> assert false
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%07d" d)) rest;
      Buffer.contents buf
  end

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Nat.of_hex: bad digit"

let of_hex s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
    then String.sub s 2 (String.length s - 2)
    else s
  in
  if String.length s = 0 then invalid_arg "Nat.of_hex: empty";
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 4) (of_int (hex_digit c))) s;
  !acc

let to_hex n =
  if is_zero n then "0"
  else begin
    let bits = num_bits n in
    let digits = (bits + 3) / 4 in
    let buf = Buffer.create digits in
    for i = digits - 1 downto 0 do
      let v =
        (if testbit n ((4 * i) + 3) then 8 else 0)
        + (if testbit n ((4 * i) + 2) then 4 else 0)
        + (if testbit n ((4 * i) + 1) then 2 else 0)
        + if testbit n (4 * i) then 1 else 0
      in
      Buffer.add_char buf "0123456789abcdef".[v]
    done;
    Buffer.contents buf
  end

let of_bytes_be s =
  let acc = ref zero in
  String.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) s;
  !acc

let to_bytes_be ~length n =
  if num_bits n > 8 * length then invalid_arg "Nat.to_bytes_be: overflow";
  String.init length (fun i ->
      let byte_idx = length - 1 - i in
      let v = ref 0 in
      for b = 7 downto 0 do
        v := (!v lsl 1) lor if testbit n ((8 * byte_idx) + b) then 1 else 0
      done;
      Char.chr !v)

let pp fmt n = Format.pp_print_string fmt (to_decimal n)
