(** Arbitrary-precision natural numbers.

    Little-endian limbs in base [2^26] stored in native-int arrays, so every
    limb product fits a 63-bit OCaml [int] with room to accumulate carries.
    This module is the substrate for deriving all field and curve parameters
    at program start; it is not used in proving hot paths (those use the
    fixed-width Montgomery representation of {!Zkdet_field}). *)

type t

val limb_bits : int
(** Number of bits per limb (26). *)

val zero : t
val one : t
val two : t

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val of_int : int -> t
(** [of_int n] converts a non-negative native int. Raises
    [Invalid_argument] on negatives. *)

val to_int : t -> int option
(** [to_int n] is [Some i] when [n] fits a native int. *)

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero] when
    [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val testbit : t -> int -> bool
(** [testbit n i] is bit [i] (little-endian) of [n]. *)

val num_bits : t -> int
(** [num_bits n] is the position of the highest set bit plus one;
    [num_bits zero = 0]. *)

val num_limbs : t -> int
val limb : t -> int -> int
(** [limb n i] is limb [i], or [0] beyond the representation. *)

val of_limbs : int array -> t
(** [of_limbs a] builds a value from base-[2^26] little-endian limbs.
    The array is copied and normalized. *)

val pow : t -> int -> t
(** [pow b e] is [b^e] for a small exponent [e >= 0]. *)

val of_decimal : string -> t
(** Parse a decimal string. Raises [Invalid_argument] on bad input. *)

val to_decimal : t -> string

val of_hex : string -> t
(** Parse a hex string (with or without ["0x"] prefix, case-insensitive). *)

val to_hex : t -> string

val of_bytes_be : string -> t
(** Interpret a big-endian byte string as a natural number. *)

val to_bytes_be : length:int -> t -> string
(** [to_bytes_be ~length n] is the big-endian encoding padded to exactly
    [length] bytes. Raises [Invalid_argument] if [n] does not fit. *)

val pp : Format.formatter -> t -> unit
