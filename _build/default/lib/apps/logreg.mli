(** Proof of logistic-regression training (paper §IV-E.1).

    The source dataset S is a flattened sample list
    [[x_1 .. x_k, y] * n]; the derived dataset D is the fitted parameter
    vector beta. The owner trains out-of-circuit; the circuit verifies
    the paper's convergence predicate
    [||J(beta') - J(beta)|| <= eps] with beta' one in-circuit
    gradient-descent step from beta, using the fixed-point gadgets. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Circuits = Zkdet_core.Circuits

type config = {
  n_samples : int;
  n_features : int;
  learning_rate : float;
  epsilon : float;  (** tolerance on the loss difference *)
}

val default_config : config
val source_size : config -> int
val beta_size : config -> int

(** {2 Float-side reference} *)

val synthetic_dataset :
  ?st:Random.State.t -> config -> float array array * float array
(** Separable-ish synthetic data with features inside the gadget
    approximation range. *)

val sigmoid_f : float -> float
val loss : float array array -> float array -> float array -> float
val gradient_step :
  float array array -> float array -> float array -> lr:float -> float array

val train : config -> float array array -> float array -> float array * int
(** Gradient descent until the loss difference is well inside the
    tolerance (margin for fixed-point error); returns (beta, iterations). *)

(** {2 Fixed-point encoding} *)

val encode_source : float array array -> float array -> Fr.t array
val decode_source : config -> Fr.t array -> float array array * float array
val encode_beta : float array -> Fr.t array

(** {2 The in-circuit predicate} *)

val convergence_check : config -> Cs.t -> Cs.wire array -> Cs.wire array -> unit
(** Constrain [|J(beta - lr grad J(beta)) - J(beta)| <= eps] over the
    source and beta wires. *)

val spec : config -> Circuits.processing_spec
(** Plug training into the generic transformation protocol: a trained
    model becomes a sellable derived dataset with a pi_t. *)

val register : config -> unit
