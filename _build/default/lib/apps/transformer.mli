(** Proof of transformer inference (paper §IV-E.2): one encoder block —
    scaled dot-product attention plus a two-layer ReLU feed-forward
    network — in fixed point. S is the flattened input sequence, D the
    flattened output; the public weights are circuit constants, and the
    owner-side reference mirrors the gadget arithmetic bit-for-bit. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Circuits = Zkdet_core.Circuits

type config = { n_tokens : int; d_model : int; d_ff : int; seed : int }

val default_config : config
val input_size : config -> int
val output_size : config -> int

val parameter_count : config -> int
(** The x-axis of Table I's transformer rows. *)

type weights = {
  w_q : float array array;
  w_k : float array array;
  w_v : float array array;
  w_1 : float array array;
  b_1 : float array;
  w_2 : float array array;
  b_2 : float array;
}

val generate_weights : config -> weights
(** Deterministic from [config.seed] — the published model. *)

val circuit_forward :
  config -> weights -> Cs.t -> Cs.wire array array -> Cs.wire array array

val value_forward : config -> weights -> Fr.t array array -> Fr.t array array
(** Reference with identical fixed-point truncation. *)

val to_matrix : config -> 'a array -> 'a array array
val of_matrix : 'a array array -> 'a array

val synthetic_input : ?st:Random.State.t -> config -> Fr.t array

val spec : config -> Circuits.processing_spec
val register : config -> unit
