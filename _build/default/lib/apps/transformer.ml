(* Proof of transformer inference (paper §IV-E.2).

   A single encoder block: scaled dot-product attention followed by a
   two-layer feed-forward network with ReLU, all in fixed point. The
   source dataset S is the flattened input sequence (n tokens x d_model);
   the derived dataset D is the block's flattened output. The weights are
   public constants of the circuit (a published model architecture whose
   *application* is being proven), so this is a pure processing spec: the
   circuit recomputes D = f(S) and the reference implementation mirrors
   the gadget arithmetic exactly through {!Fixed.Value}. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Fixed = Zkdet_circuit.Fixed_point
module Circuits = Zkdet_core.Circuits

type config = {
  n_tokens : int;
  d_model : int;
  d_ff : int;
  seed : int; (* deterministic weight generation *)
}

let default_config = { n_tokens = 2; d_model = 2; d_ff = 2; seed = 99 }

let input_size (c : config) = c.n_tokens * c.d_model
let output_size (c : config) = c.n_tokens * c.d_model

(** Number of parameters, the x-axis of Table I's transformer rows. *)
let parameter_count (c : config) =
  (3 * c.d_model * c.d_model) (* W_q, W_k, W_v *)
  + (c.d_model * c.d_ff) + c.d_ff (* W_1, b_1 *)
  + (c.d_ff * c.d_model) + c.d_model (* W_2, b_2 *)

type weights = {
  w_q : float array array;
  w_k : float array array;
  w_v : float array array;
  w_1 : float array array; (* d_model x d_ff *)
  b_1 : float array;
  w_2 : float array array; (* d_ff x d_model *)
  b_2 : float array;
}

let generate_weights (c : config) : weights =
  let st = Random.State.make [| c.seed |] in
  let mat r cols = Array.init r (fun _ -> Array.init cols (fun _ -> Random.State.float st 0.5 -. 0.25)) in
  let vec n = Array.init n (fun _ -> Random.State.float st 0.2 -. 0.1) in
  {
    w_q = mat c.d_model c.d_model;
    w_k = mat c.d_model c.d_model;
    w_v = mat c.d_model c.d_model;
    w_1 = mat c.d_model c.d_ff;
    b_1 = vec c.d_ff;
    w_2 = mat c.d_ff c.d_model;
    b_2 = vec c.d_model;
  }

(* ---- generic forward pass over an arithmetic interface ----
   Instantiated twice: once with circuit wires, once with Value — the two
   evaluations agree exactly, so compute-and-equate is sound. *)

module type ARITH = sig
  type t

  val const : float -> t
  val add : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val exp : t -> t
  val relu : t -> t
end

module Forward (A : ARITH) = struct
  (* rows(a) x (rows b = cols a) matrix product *)
  let matmul (a : A.t array array) (b : A.t array array) : A.t array array =
    let rows = Array.length a and inner = Array.length b in
    let cols = Array.length b.(0) in
    Array.init rows (fun i ->
        Array.init cols (fun j ->
            let acc = ref (A.const 0.0) in
            for k = 0 to inner - 1 do
              acc := A.add !acc (A.mul a.(i).(k) b.(k).(j))
            done;
            !acc))

  let softmax_row (row : A.t array) : A.t array =
    let exps = Array.map A.exp row in
    let total = Array.fold_left A.add (A.const 0.0) exps in
    Array.map (fun e -> A.div e total) exps

  let block (c : config) (w : weights) (x : A.t array array) : A.t array array =
    let lift = Array.map (Array.map A.const) in
    let q = matmul x (lift w.w_q) in
    let k = matmul x (lift w.w_k) in
    let v = matmul x (lift w.w_v) in
    (* scores = Q K^T / sqrt(d_k) *)
    let kt = Array.init c.d_model (fun i -> Array.map (fun row -> row.(i)) k) in
    let inv_sqrt_dk = A.const (1.0 /. Float.sqrt (float_of_int c.d_model)) in
    let scores =
      Array.map (Array.map (fun s -> A.mul s inv_sqrt_dk)) (matmul q kt)
    in
    let attn = Array.map softmax_row scores in
    let z = matmul attn v in
    (* FFN: relu(z W1 + b1) W2 + b2 *)
    let h = matmul z (lift w.w_1) in
    let h =
      Array.map (fun row -> Array.mapi (fun j e -> A.relu (A.add e (A.const w.b_1.(j)))) row) h
    in
    let out = matmul h (lift w.w_2) in
    Array.map
      (fun row -> Array.mapi (fun j e -> A.add e (A.const w.b_2.(j))) row)
      out
end

(* circuit instantiation *)
let circuit_forward (c : config) (w : weights) cs (x : Cs.wire array array) :
    Cs.wire array array =
  let module A = struct
    type t = Cs.wire

    let const v = Fixed.constant cs v
    let add = Fixed.add cs

    let mul = Fixed.mul cs
    let div = Fixed.div cs
    let exp = Fixed.exp cs
    let relu = Fixed.relu cs
  end in
  let module F = Forward (A) in
  F.block c w x

(* reference instantiation with identical rounding *)
let value_forward (c : config) (w : weights) (x : Fr.t array array) :
    Fr.t array array =
  let module F = Forward (struct
    type t = Fr.t

    let const = Fixed.Value.of_float
    let add = Fixed.Value.add

    let mul = Fixed.Value.mul
    let div = Fixed.Value.div
    let exp = Fixed.Value.exp
    let relu = Fixed.Value.relu
  end) in
  F.block c w x

(* flattening *)
let to_matrix (c : config) (flat : 'a array) : 'a array array =
  Array.init c.n_tokens (fun i -> Array.sub flat (i * c.d_model) c.d_model)

let of_matrix (m : 'a array array) : 'a array = Array.concat (Array.to_list m)

(** Synthetic input sequence with entries in the gadget-friendly range. *)
let synthetic_input ?(st = Random.State.make [| 21 |]) (c : config) : Fr.t array =
  Array.init (input_size c) (fun _ ->
      Fixed.of_float (Random.State.float st 1.0 -. 0.5))

(** The processing spec: transformer inference as a provable data
    transformation. *)
let spec (c : config) : Circuits.processing_spec =
  let w = generate_weights c in
  Circuits.pure_spec
    ~name:
      (Printf.sprintf "transformer:t%d:d%d:f%d:s%d" c.n_tokens c.d_model c.d_ff
         c.seed)
    ~out_size:(fun _ -> output_size c)
    ~apply:(fun cs s_ws -> of_matrix (circuit_forward c w cs (to_matrix c s_ws)))
    ~reference:(fun s -> of_matrix (value_forward c w (to_matrix c s)))

let register (c : config) = Circuits.register_processing (spec c)
