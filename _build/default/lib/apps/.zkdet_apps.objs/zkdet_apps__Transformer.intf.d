lib/apps/transformer.mli: Random Zkdet_core Zkdet_field Zkdet_plonk
