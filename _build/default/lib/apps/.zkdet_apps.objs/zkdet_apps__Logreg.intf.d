lib/apps/logreg.mli: Random Zkdet_core Zkdet_field Zkdet_plonk
