lib/apps/logreg.ml: Array Float List Printf Random Zkdet_circuit Zkdet_core Zkdet_field Zkdet_plonk
