lib/apps/transformer.ml: Array Float Printf Random Zkdet_circuit Zkdet_core Zkdet_field Zkdet_plonk
