(* Proof of logistic-regression training (paper §IV-E.1).

   The source dataset S is a flattened list of samples
   [x_1 .. x_k, y] * n; the derived dataset D is the fitted parameter
   vector beta = (beta_0 .. beta_k). The owner trains out-of-circuit by
   gradient descent; the circuit does NOT redo the training — it verifies
   the convergence predicate the paper uses:

       || J(beta') - J(beta) || <= eps

   where beta' is one in-circuit gradient-descent step from beta, using
   the per-sample loss  J_i = softplus(z_i) - y_i z_i  (algebraically
   identical to the cross-entropy of the paper) and the fixed-point
   gadget library for sigmoid/softplus. *)

module Fr = Zkdet_field.Bn254.Fr
module Cs = Zkdet_plonk.Cs
module Fixed = Zkdet_circuit.Fixed_point
module Circuits = Zkdet_core.Circuits

type config = {
  n_samples : int;
  n_features : int;
  learning_rate : float;
  epsilon : float; (* convergence tolerance on the loss difference *)
}

let default_config = { n_samples = 4; n_features = 2; learning_rate = 0.1; epsilon = 0.05 }

let source_size (c : config) = c.n_samples * (c.n_features + 1)
let beta_size (c : config) = c.n_features + 1

(* ---- float-side reference: synthetic data + training ---- *)

(** Generate a linearly-separable-ish synthetic dataset with small feature
    values (keeping z = beta . x inside the gadget approximation range). *)
let synthetic_dataset ?(st = Random.State.make [| 7 |]) (c : config) :
    float array array * float array =
  let xs =
    Array.init c.n_samples (fun _ ->
        Array.init c.n_features (fun _ -> Random.State.float st 1.0 -. 0.5))
  in
  let ys =
    Array.map
      (fun x ->
        let s = Array.fold_left ( +. ) 0.0 x in
        if s > 0.0 then 1.0 else 0.0)
      xs
  in
  (xs, ys)

let sigmoid_f z = 1.0 /. (1.0 +. Float.exp (-.z))

let loss (xs : float array array) (ys : float array) (beta : float array) :
    float =
  let n = Array.length xs in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let z = ref beta.(0) in
    Array.iteri (fun j xj -> z := !z +. (beta.(j + 1) *. xj)) xs.(i);
    (* softplus(z) - y z *)
    total := !total +. Float.log (1.0 +. Float.exp !z) -. (ys.(i) *. !z)
  done;
  !total /. float_of_int n

let gradient_step (xs : float array array) (ys : float array)
    (beta : float array) ~(lr : float) : float array =
  let n = Array.length xs in
  let k = Array.length beta - 1 in
  let grad = Array.make (k + 1) 0.0 in
  for i = 0 to n - 1 do
    let z = ref beta.(0) in
    Array.iteri (fun j xj -> z := !z +. (beta.(j + 1) *. xj)) xs.(i);
    let err = sigmoid_f !z -. ys.(i) in
    grad.(0) <- grad.(0) +. err;
    for j = 0 to k - 1 do
      grad.(j + 1) <- grad.(j + 1) +. (err *. xs.(i).(j))
    done
  done;
  Array.mapi (fun j b -> b -. (lr *. grad.(j) /. float_of_int n)) beta

(** Train until the loss difference between successive iterations is well
    inside the tolerance (margin for fixed-point error). *)
let train (c : config) (xs : float array array) (ys : float array) :
    float array * int =
  let rec go beta iters =
    let beta' = gradient_step xs ys beta ~lr:c.learning_rate in
    if Float.abs (loss xs ys beta' -. loss xs ys beta) <= c.epsilon /. 4.0 || iters > 5000
    then (beta', iters)
    else go beta' (iters + 1)
  in
  go (Array.make (c.n_features + 1) 0.0) 0

(* ---- encoding between datasets and fixed-point field elements ---- *)

let encode_source (xs : float array array) (ys : float array) : Fr.t array =
  Array.concat
    (Array.to_list
       (Array.mapi
          (fun i x ->
            Array.append (Array.map Fixed.of_float x) [| Fixed.of_float ys.(i) |])
          xs))

let decode_source (c : config) (s : Fr.t array) : float array array * float array
    =
  let xs =
    Array.init c.n_samples (fun i ->
        Array.init c.n_features (fun j ->
            Fixed.to_float s.((i * (c.n_features + 1)) + j)))
  in
  let ys =
    Array.init c.n_samples (fun i ->
        Fixed.to_float s.((i * (c.n_features + 1)) + c.n_features))
  in
  (xs, ys)

let encode_beta (beta : float array) : Fr.t array = Array.map Fixed.of_float beta

(* ---- the in-circuit convergence predicate ---- *)

(* Per-sample loss contribution and error, shared by J and the gradient. *)
let sample_terms cs (beta_ws : Cs.wire array) (x_ws : Cs.wire array)
    (y_w : Cs.wire) : Cs.wire * Cs.wire =
  (* z = beta_0 + sum_j beta_{j+1} x_j *)
  let z = ref beta_ws.(0) in
  Array.iteri
    (fun j xj -> z := Fixed.add cs !z (Fixed.mul cs beta_ws.(j + 1) xj))
    x_ws;
  let z = !z in
  (* loss_i = softplus(z) - y z ; err_i = sigmoid(z) - y *)
  let loss_i = Fixed.sub cs (Fixed.softplus cs z) (Fixed.mul cs y_w z) in
  let err_i = Fixed.sub cs (Fixed.sigmoid cs z) y_w in
  (loss_i, err_i)

let in_circuit_loss_and_grad cs (c : config) (beta_ws : Cs.wire array)
    (s_ws : Cs.wire array) : Cs.wire * Cs.wire array =
  let stride = c.n_features + 1 in
  let inv_n = Fixed.constant cs (1.0 /. float_of_int c.n_samples) in
  let losses = ref [] in
  let grad = Array.make (c.n_features + 1) (Fixed.constant cs 0.0) in
  for i = 0 to c.n_samples - 1 do
    let x_ws = Array.sub s_ws (i * stride) c.n_features in
    let y_w = s_ws.((i * stride) + c.n_features) in
    let loss_i, err_i = sample_terms cs beta_ws x_ws y_w in
    losses := loss_i :: !losses;
    grad.(0) <- Fixed.add cs grad.(0) err_i;
    for j = 0 to c.n_features - 1 do
      grad.(j + 1) <- Fixed.add cs grad.(j + 1) (Fixed.mul cs err_i x_ws.(j))
    done
  done;
  let total = List.fold_left (fun a b -> Fixed.add cs a b) (Fixed.constant cs 0.0) !losses in
  let j_val = Fixed.mul cs total inv_n in
  let grad = Array.map (fun g -> Fixed.mul cs g inv_n) grad in
  (j_val, grad)

(** The convergence check: derive beta' = beta - lr * grad(J)(beta) in
    circuit and assert |J(beta') - J(beta)| <= eps. *)
let convergence_check (c : config) cs (s_ws : Cs.wire array)
    (beta_ws : Cs.wire array) : unit =
  let lr = Fixed.constant cs c.learning_rate in
  let j0, grad = in_circuit_loss_and_grad cs c beta_ws s_ws in
  let beta' =
    Array.mapi (fun j b -> Fixed.sub cs b (Fixed.mul cs lr grad.(j))) beta_ws
  in
  let j1, _ = in_circuit_loss_and_grad cs c beta' s_ws in
  let eps = Fixed.constant cs c.epsilon in
  Fixed.assert_abs_le cs j1 j0 eps

(** The processing spec: plugs logistic regression into the generic
    transformation protocol — a trained model becomes a sellable derived
    dataset with a proof of transformation (§IV-E). *)
let spec (c : config) : Circuits.processing_spec =
  {
    Circuits.proc_name =
      Printf.sprintf "logreg:n%d:k%d" c.n_samples c.n_features;
    out_size = (fun _ -> beta_size c);
    check = (fun cs s_ws d_ws -> convergence_check c cs s_ws d_ws);
    reference =
      (fun s ->
        let xs, ys = decode_source c s in
        let beta, _ = train c xs ys in
        encode_beta beta);
  }

let register (c : config) = Circuits.register_processing (spec c)
