lib/chain/chain.mli: Format Gas
