lib/chain/gas.ml: String
