lib/chain/chain.ml: Array Format Gas Hashtbl List Option Printf String Zkdet_hash
