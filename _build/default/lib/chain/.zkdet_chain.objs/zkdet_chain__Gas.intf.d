lib/chain/gas.mli:
