(* Keccak-256 as used by Ethereum: rate 1088, capacity 512, original
   multi-rate padding 0x01..0x80 (not the NIST SHA3 0x06 variant).

   Round constants and rotation offsets are generated from the Keccak
   specification's LFSR and pi/rho schedule rather than transcribed. *)

let rounds = 24
let rate_bytes = 136

(* rc(t): bit output of LFSR x^8 + x^6 + x^5 + x^4 + 1 over GF(2). *)
let rc_bit =
  let state = ref 1 in
  let bits = Array.make 255 false in
  for t = 0 to 254 do
    bits.(t) <- !state land 1 = 1;
    let s = !state lsl 1 in
    state := (if s land 0x100 <> 0 then s lxor 0x171 else s) land 0xFF
  done;
  fun t -> bits.(t mod 255)

let round_constants =
  Array.init rounds (fun ir ->
      let rc = ref 0L in
      for j = 0 to 6 do
        if rc_bit (j + (7 * ir)) then
          rc := Int64.logor !rc (Int64.shift_left 1L ((1 lsl j) - 1))
      done;
      !rc)

(* Rho rotation offsets via the official (x,y) walk. *)
let rho_offsets =
  let r = Array.make 25 0 in
  let x = ref 1 and y = ref 0 in
  for t = 0 to 23 do
    r.(!x + (5 * !y)) <- ((t + 1) * (t + 2) / 2) mod 64;
    let nx = !y and ny = ((2 * !x) + (3 * !y)) mod 5 in
    x := nx;
    y := ny
  done;
  r

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f (st : int64 array) =
  let c = Array.make 5 0L and d = Array.make 5 0L in
  let b = Array.make 25 0L in
  for ir = 0 to rounds - 1 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor st.(x)
          (Int64.logxor st.(x + 5)
             (Int64.logxor st.(x + 10) (Int64.logxor st.(x + 15) st.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for y = 0 to 4 do
      for x = 0 to 4 do
        st.(x + (5 * y)) <- Int64.logxor st.(x + (5 * y)) d.(x)
      done
    done;
    (* rho + pi *)
    for y = 0 to 4 do
      for x = 0 to 4 do
        let nx = y and ny = ((2 * x) + (3 * y)) mod 5 in
        b.(nx + (5 * ny)) <- rotl64 st.(x + (5 * y)) rho_offsets.(x + (5 * y))
      done
    done;
    (* chi *)
    for y = 0 to 4 do
      for x = 0 to 4 do
        st.(x + (5 * y)) <-
          Int64.logxor
            b.(x + (5 * y))
            (Int64.logand
               (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    st.(0) <- Int64.logxor st.(0) round_constants.(ir)
  done

let digest (msg : string) : string =
  let st = Array.make 25 0L in
  let padded =
    let len = String.length msg in
    let padlen = rate_bytes - (len mod rate_bytes) in
    let b = Bytes.make (len + padlen) '\x00' in
    Bytes.blit_string msg 0 b 0 len;
    Bytes.set b len '\x01';
    Bytes.set b (len + padlen - 1)
      (Char.chr (Char.code (Bytes.get b (len + padlen - 1)) lor 0x80));
    Bytes.to_string b
  in
  let absorb_block off =
    for i = 0 to (rate_bytes / 8) - 1 do
      let lane = ref 0L in
      for j = 7 downto 0 do
        lane :=
          Int64.logor (Int64.shift_left !lane 8)
            (Int64.of_int (Char.code padded.[off + (8 * i) + j]))
      done;
      st.(i) <- Int64.logxor st.(i) !lane
    done;
    keccak_f st
  in
  let nblocks = String.length padded / rate_bytes in
  for i = 0 to nblocks - 1 do
    absorb_block (i * rate_bytes)
  done;
  String.init 32 (fun i ->
      let lane = st.(i / 8) in
      Char.chr
        (Int64.to_int (Int64.shift_right_logical lane (8 * (i mod 8))) land 0xFF))

let digest_hex s = Sha256.hex_of_string (digest s)
