lib/hash/keccak256.ml: Array Bytes Char Int64 Sha256 String
