lib/hash/sha256.ml: Array Buffer Bytes Char Float List Printf String
