lib/hash/keccak256.mli:
