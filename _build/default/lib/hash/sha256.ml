(* SHA-256 (FIPS 180-4) on native ints masked to 32 bits. *)

let mask32 = 0xFFFFFFFF

(* Round constants: fractional parts of cube roots of the first 64 primes.
   Derived here rather than transcribed. *)
let k =
  let primes =
    let sieve = Array.make 400 true in
    let out = ref [] in
    for i = 2 to 399 do
      if sieve.(i) then begin
        out := i :: !out;
        let j = ref (i * i) in
        while !j < 400 do
          sieve.(!j) <- false;
          j := !j + i
        done
      end
    done;
    Array.of_list (List.rev !out)
  in
  Array.init 64 (fun i ->
      let c = Float.cbrt (float_of_int primes.(i)) in
      int_of_float (Float.rem c 1.0 *. 4294967296.0) land mask32)

let h0 =
  (* Fractional parts of square roots of the first 8 primes. *)
  let primes = [| 2; 3; 5; 7; 11; 13; 17; 19 |] in
  Array.map
    (fun p ->
      let c = sqrt (float_of_int p) in
      int_of_float (Float.rem c 1.0 *. 4294967296.0) land mask32)
    primes

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

type ctx = { h : int array; buf : Buffer.t; mutable total : int }

let init () = { h = Array.copy h0; buf = Buffer.create 64; total = 0 }

let process_block h block off =
  let w = Array.make 64 0 in
  for t = 0 to 15 do
    w.(t) <-
      (Char.code block.[off + (4 * t)] lsl 24)
      lor (Char.code block.[off + (4 * t) + 1] lsl 16)
      lor (Char.code block.[off + (4 * t) + 2] lsl 8)
      lor Char.code block.[off + (4 * t) + 3]
  done;
  for t = 16 to 63 do
    let s0 = rotr w.(t - 15) 7 lxor rotr w.(t - 15) 18 lxor (w.(t - 15) lsr 3) in
    let s1 = rotr w.(t - 2) 17 lxor rotr w.(t - 2) 19 lxor (w.(t - 2) lsr 10) in
    w.(t) <- (w.(t - 16) + s0 + w.(t - 7) + s1) land mask32
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land !g) in
    let t1 = (!hh + s1 + ch + k.(t) + w.(t)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let feed ctx s =
  ctx.total <- ctx.total + String.length s;
  Buffer.add_string ctx.buf s;
  let data = Buffer.contents ctx.buf in
  let nblocks = String.length data / 64 in
  for i = 0 to nblocks - 1 do
    process_block ctx.h data (i * 64)
  done;
  Buffer.clear ctx.buf;
  Buffer.add_string ctx.buf
    (String.sub data (nblocks * 64) (String.length data - (nblocks * 64)))

let finalize ctx =
  let bitlen = ctx.total * 8 in
  let padlen =
    let r = (ctx.total + 1 + 8) mod 64 in
    if r = 0 then 0 else 64 - r
  in
  let pad = Bytes.make (1 + padlen + 8) '\x00' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (1 + padlen + i) (Char.chr ((bitlen lsr (8 * (7 - i))) land 0xFF))
  done;
  feed ctx (Bytes.to_string pad);
  assert (Buffer.length ctx.buf = 0);
  String.init 32 (fun i ->
      Char.chr ((ctx.h.(i / 4) lsr (8 * (3 - (i mod 4)))) land 0xFF))

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let hex_of_string s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let digest_hex s = hex_of_string (digest s)
