(** Keccak-256 as used by Ethereum (rate 1088, original 0x01 padding —
    not the NIST SHA3 variant). Round constants and rotation offsets are
    generated from the specification's LFSR and pi/rho walk rather than
    transcribed. Used for addresses. *)

val digest : string -> string
(** 32-byte digest. *)

val digest_hex : string -> string
