(** SHA-256 (FIPS 180-4), from scratch, validated against the NIST test
    vectors. Used for content addressing, transaction/block hashing and
    the Fiat–Shamir transcript. *)

type ctx

val init : unit -> ctx
val feed : ctx -> string -> unit
val finalize : ctx -> string

val digest : string -> string
(** One-shot 32-byte digest. *)

val digest_hex : string -> string
val hex_of_string : string -> string
