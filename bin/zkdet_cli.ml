(* Command-line tool for poking at the ZKDET stack:

     dune exec bin/zkdet_cli.exe -- params      # curve/field parameters
     dune exec bin/zkdet_cli.exe -- selftest    # tiny end-to-end proof
     dune exec bin/zkdet_cli.exe -- ceremony -n 3 --size 8
                                                # powers-of-tau simulation
     dune exec bin/zkdet_cli.exe -- selftest --profile
                                                # + telemetry span tree
     dune exec bin/zkdet_cli.exe -- trace-check trace.jsonl
                                                # validate a ZKDET_TRACE file *)

module Fr = Zkdet_field.Bn254.Fr
module Fp = Zkdet_field.Bn254.Fp
module Nat = Zkdet_num.Nat
module Ceremony = Zkdet_kzg.Ceremony
module Telemetry = Zkdet_telemetry.Telemetry
module Json = Zkdet_telemetry.Json
open Cmdliner

let params_cmd =
  let run () =
    Printf.printf "curve: BN254 (alt_bn128)\n";
    Printf.printf "base field p  (%d bits): %s\n" Fp.num_bits (Nat.to_decimal Fp.modulus);
    Printf.printf "scalar field r (%d bits): %s\n" Fr.num_bits (Nat.to_decimal Fr.modulus);
    Printf.printf "Fr two-adicity: %d (FFT domains up to 2^%d)\n" Fr.two_adicity
      Fr.two_adicity;
    Printf.printf "MiMC: %d rounds, S-box x^%d (CTR mode)\n" Zkdet_mimc.Mimc.rounds
      Zkdet_mimc.Mimc.degree;
    Printf.printf "Poseidon: width %d, R_F=%d, R_P=%d, S-box x^5\n"
      Zkdet_poseidon.Poseidon.width Zkdet_poseidon.Poseidon.full_rounds
      Zkdet_poseidon.Poseidon.partial_rounds;
    Printf.printf "proof: 9 G1 + 6 Fr = %d bytes\n" ((9 * 65) + (6 * 32));
    Printf.printf
      "parallel runtime: %d domain(s) (ZKDET_DOMAINS; host recommends %d)\n"
      (Zkdet_parallel.Pool.num_domains ())
      (Domain.recommended_domain_count ())
  in
  Cmd.v (Cmd.info "params" ~doc:"Print the cryptographic parameters")
    Term.(const run $ const ())

let selftest_cmd =
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ]
          ~doc:"Total domains for the parallel runtime (1 = sequential)")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Print the telemetry span tree after the proof")
  in
  let run domains profile =
    (match domains with
    | Some n when n < 1 ->
      prerr_endline "zkdet: --domains must be at least 1";
      exit 2
    | _ -> ());
    Option.iter Zkdet_parallel.Pool.set_num_domains domains;
    if profile then Telemetry.set_enabled true;
    Printf.printf "parallel runtime: %d domain(s)\n"
      (Zkdet_parallel.Pool.num_domains ());
    let env = Zkdet_core.Env.create ~log2_max_gates:12 () in
    let data = [| Fr.of_int 11; Fr.of_int 22 |] in
    let sealed = Zkdet_core.Transform.seal ~st:env.Zkdet_core.Env.rng data in
    print_endline "proving pi_e for a 2-entry dataset...";
    let proof = Zkdet_core.Transform.prove_encryption env sealed in
    let ok =
      Zkdet_core.Transform.verify_encryption env
        ~nonce:sealed.Zkdet_core.Transform.nonce
        ~c_d:sealed.Zkdet_core.Transform.c_d
        ~c_k:sealed.Zkdet_core.Transform.c_k
        ~ciphertext:sealed.Zkdet_core.Transform.ciphertext proof
    in
    Printf.printf "self-test %s\n" (if ok then "PASSED" else "FAILED");
    if profile then Telemetry.print_summary ();
    Telemetry.maybe_write_trace ();
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "selftest" ~doc:"Generate and verify one proof of encryption")
    Term.(const run $ domains $ profile)

let ceremony_cmd =
  let contributors =
    Arg.(value & opt int 3 & info [ "n"; "contributors" ] ~doc:"Number of contributors")
  in
  let size = Arg.(value & opt int 8 & info [ "size" ] ~doc:"SRS size (G1 powers)") in
  let run n size =
    Printf.printf "simulating a %d-party powers-of-tau ceremony (size %d)...\n%!" n size;
    let state = ref (Ceremony.initial ~size) in
    for i = 1 to n do
      state := Ceremony.contribute ~contributor:(Printf.sprintf "party-%d" i) !state;
      Printf.printf "  party-%d contributed\n%!" i
    done;
    let ok = Ceremony.verify_transcript !state in
    Printf.printf "transcript verification: %s\n" (if ok then "OK" else "FAILED");
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "ceremony" ~doc:"Simulate and verify a powers-of-tau ceremony")
    Term.(const run $ contributors $ size)

let trace_check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace file (ZKDET_TRACE output)")
  in
  (* Validates a trace end to end: every line must parse as JSON, and the
     whole file must rebuild into a report (used by the CI profile-smoke
     job to keep the trace format honest). *)
  let run file =
    let ic = open_in file in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    let bad = ref 0 in
    List.iteri
      (fun i line ->
        match Json.parse line with
        | Ok _ -> ()
        | Error e ->
          incr bad;
          Printf.eprintf "line %d: %s\n" (i + 1) e)
      lines;
    if !bad > 0 then (
      Printf.printf "trace-check FAILED: %d unparseable line(s)\n" !bad;
      exit 1);
    match Telemetry.Report.of_jsonl lines with
    | Error e ->
      Printf.printf "trace-check FAILED: %s\n" e;
      exit 1
    | Ok report ->
      let count_spans spans =
        let rec go acc (s : Telemetry.Report.span) =
          List.fold_left go (acc + 1) s.Telemetry.Report.children
        in
        List.fold_left go 0 spans
      in
      Printf.printf
        "trace-check OK: %d line(s), %d span node(s), %d counter(s), %d \
         histogram(s)\n"
        (List.length lines)
        (count_spans report.Telemetry.Report.spans)
        (List.length report.Telemetry.Report.counters)
        (List.length report.Telemetry.Report.histograms)
  in
  Cmd.v
    (Cmd.info "trace-check" ~doc:"Validate a JSONL telemetry trace file")
    Term.(const run $ file)

let () =
  let doc = "ZKDET: traceable, privacy-preserving data exchange" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "zkdet" ~doc)
          [ params_cmd; selftest_cmd; ceremony_cmd; trace_check_cmd ]))
