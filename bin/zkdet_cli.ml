(* Command-line tool for poking at the ZKDET stack:

     dune exec bin/zkdet_cli.exe -- params      # curve/field parameters
     dune exec bin/zkdet_cli.exe -- selftest    # tiny end-to-end proof
     dune exec bin/zkdet_cli.exe -- ceremony -n 3 --size 8
                                                # powers-of-tau simulation
     dune exec bin/zkdet_cli.exe -- selftest --profile
                                                # + telemetry span tree
     dune exec bin/zkdet_cli.exe -- trace-check trace.jsonl
                                                # validate a ZKDET_TRACE file
     dune exec bin/zkdet_cli.exe -- prove --backend plonk --out proof.bin
     dune exec bin/zkdet_cli.exe -- verify proof.bin
                                                # cross-process prove/verify
     dune exec bin/zkdet_cli.exe -- verify-batch a.bin b.bin c.bin
                                                # one folded check per backend
     dune exec bin/zkdet_cli.exe -- chain-snapshot --out chain.bin
     dune exec bin/zkdet_cli.exe -- chain-restore chain.bin
                                                # ledger state round-trip *)

module Fr = Zkdet_field.Bn254.Fr
module Fp = Zkdet_field.Bn254.Fp
module Nat = Zkdet_num.Nat
module Ceremony = Zkdet_kzg.Ceremony
module Telemetry = Zkdet_telemetry.Telemetry
module Json = Zkdet_telemetry.Json
module Codec = Zkdet_codec.Codec
module Cs = Zkdet_plonk.Cs
module Proof_system = Zkdet_core.Proof_system
module Chain = Zkdet_chain.Chain
module Scenario = Zkdet_core.Scenario
module Obs = Zkdet_obs.Obs
module Journal = Zkdet_obs.Journal
module Audit = Zkdet_obs.Audit
module Ops = Zkdet_ops.Ops
module Flame = Zkdet_ops.Flame
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let params_cmd =
  let run () =
    Printf.printf "curve: BN254 (alt_bn128)\n";
    Printf.printf "base field p  (%d bits): %s\n" Fp.num_bits (Nat.to_decimal Fp.modulus);
    Printf.printf "scalar field r (%d bits): %s\n" Fr.num_bits (Nat.to_decimal Fr.modulus);
    Printf.printf "Fr two-adicity: %d (FFT domains up to 2^%d)\n" Fr.two_adicity
      Fr.two_adicity;
    Printf.printf "MiMC: %d rounds, S-box x^%d (CTR mode)\n" Zkdet_mimc.Mimc.rounds
      Zkdet_mimc.Mimc.degree;
    Printf.printf "Poseidon: width %d, R_F=%d, R_P=%d, S-box x^5\n"
      Zkdet_poseidon.Poseidon.width Zkdet_poseidon.Poseidon.full_rounds
      Zkdet_poseidon.Poseidon.partial_rounds;
    Printf.printf "proof: 9 G1 + 6 Fr = %d bytes\n" ((9 * 65) + (6 * 32));
    Printf.printf
      "parallel runtime: %d domain(s) (ZKDET_DOMAINS; host recommends %d)\n"
      (Zkdet_parallel.Pool.num_domains ())
      (Domain.recommended_domain_count ())
  in
  Cmd.v (Cmd.info "params" ~doc:"Print the cryptographic parameters")
    Term.(const run $ const ())

let selftest_cmd =
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ]
          ~doc:"Total domains for the parallel runtime (1 = sequential)")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Print the telemetry span tree after the proof")
  in
  let run domains profile =
    (match domains with
    | Some n when n < 1 ->
      prerr_endline "zkdet: --domains must be at least 1";
      exit 2
    | _ -> ());
    Option.iter Zkdet_parallel.Pool.set_num_domains domains;
    if profile then Telemetry.set_enabled true;
    Printf.printf "parallel runtime: %d domain(s)\n"
      (Zkdet_parallel.Pool.num_domains ());
    let env = Zkdet_core.Env.create ~log2_max_gates:12 () in
    let data = [| Fr.of_int 11; Fr.of_int 22 |] in
    let sealed = Zkdet_core.Transform.seal ~st:env.Zkdet_core.Env.rng data in
    print_endline "proving pi_e for a 2-entry dataset...";
    let proof = Zkdet_core.Transform.prove_encryption env sealed in
    let ok =
      Zkdet_core.Transform.verify_encryption env
        ~nonce:sealed.Zkdet_core.Transform.nonce
        ~c_d:sealed.Zkdet_core.Transform.c_d
        ~c_k:sealed.Zkdet_core.Transform.c_k
        ~ciphertext:sealed.Zkdet_core.Transform.ciphertext proof
    in
    Printf.printf "self-test %s\n" (if ok then "PASSED" else "FAILED");
    if profile then Telemetry.print_summary ();
    Telemetry.maybe_write_trace ();
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "selftest" ~doc:"Generate and verify one proof of encryption")
    Term.(const run $ domains $ profile)

let ceremony_cmd =
  let contributors =
    Arg.(value & opt int 3 & info [ "n"; "contributors" ] ~doc:"Number of contributors")
  in
  let size = Arg.(value & opt int 8 & info [ "size" ] ~doc:"SRS size (G1 powers)") in
  let run n size =
    Printf.printf "simulating a %d-party powers-of-tau ceremony (size %d)...\n%!" n size;
    let state = ref (Ceremony.initial ~size) in
    for i = 1 to n do
      state := Ceremony.contribute ~contributor:(Printf.sprintf "party-%d" i) !state;
      Printf.printf "  party-%d contributed\n%!" i
    done;
    let ok = Ceremony.verify_transcript !state in
    Printf.printf "transcript verification: %s\n" (if ok then "OK" else "FAILED");
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "ceremony" ~doc:"Simulate and verify a powers-of-tau ceremony")
    Term.(const run $ contributors $ size)

let trace_check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"JSONL trace file (ZKDET_TRACE output)")
  in
  (* Validates a trace end to end: every line must parse as JSON, and the
     whole file must rebuild into a report (used by the CI profile-smoke
     job to keep the trace format honest). *)
  let run file =
    let ic = open_in file in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    let bad = ref 0 in
    List.iteri
      (fun i line ->
        match Json.parse line with
        | Ok _ -> ()
        | Error e ->
          incr bad;
          Printf.eprintf "line %d: %s\n" (i + 1) e)
      lines;
    if !bad > 0 then (
      Printf.printf "trace-check FAILED: %d unparseable line(s)\n" !bad;
      exit 1);
    match Telemetry.Report.of_jsonl lines with
    | Error e ->
      Printf.printf "trace-check FAILED: %s\n" e;
      exit 1
    | Ok report ->
      let count_spans spans =
        let rec go acc (s : Telemetry.Report.span) =
          List.fold_left go (acc + 1) s.Telemetry.Report.children
        in
        List.fold_left go 0 spans
      in
      Printf.printf
        "trace-check OK: %d line(s), %d span node(s), %d counter(s), %d \
         histogram(s)\n"
        (List.length lines)
        (count_spans report.Telemetry.Report.spans)
        (List.length report.Telemetry.Report.counters)
        (List.length report.Telemetry.Report.histograms)
  in
  Cmd.v
    (Cmd.info "trace-check" ~doc:"Validate a JSONL telemetry trace file")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* Cross-process prove / verify.

   [prove] writes a self-contained "ZBDL" bundle — backend name, public
   inputs, verification key and proof, all in canonical wire form — so a
   separate [verify] invocation (or another machine) can check the proof
   from bytes alone. *)

let bundle_codec : (string * (Fr.t list * (string * string))) Codec.t =
  Codec.with_context "zkdet.bundle"
    (Codec.envelope ~magic:"ZBDL" ~version:1
       (Codec.pair Codec.str
          (Codec.pair (Codec.list Fr.codec) (Codec.pair Codec.bytes Codec.bytes))))

(* Deterministic demo circuit: for secret x, y derived from [seed], prove
   knowledge of factors behind the public product x*y and sum x+y. *)
let demo_circuit ~seed =
  let st = Random.State.make [| seed; 0 |] in
  let x = Fr.random st and y = Fr.random st in
  let cs = Cs.create () in
  let prod_pub = Cs.public_input cs (Fr.mul x y) in
  let sum_pub = Cs.public_input cs (Fr.add x y) in
  let xw = Cs.fresh cs x in
  let yw = Cs.fresh cs y in
  Cs.assert_equal cs (Cs.mul cs xw yw) prod_pub;
  Cs.assert_equal cs (Cs.add cs xw yw) sum_pub;
  Cs.compile cs

let backend_arg =
  Arg.(
    value
    & opt string "plonk"
    & info [ "backend" ] ~docv:"NAME" ~doc:"Proof system: plonk or groth16")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N" ~doc:"Deterministic seed for the demo circuit")

let prove_cmd =
  let out =
    Arg.(
      value & opt string "proof.bin"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Bundle output path")
  in
  let run backend seed out =
    match Proof_system.by_name backend with
    | None ->
      Printf.eprintf "zkdet: unknown backend %S (try plonk or groth16)\n" backend;
      exit 2
    | Some (module B) ->
      let compiled = demo_circuit ~seed in
      (* Separate RNG streams for setup and proving, so the proof bytes do
         not depend on whether setup was served from the SRS cache. *)
      let pk = B.setup ~st:(Random.State.make [| seed; 1 |]) compiled in
      let proof = B.prove ~st:(Random.State.make [| seed; 2 |]) pk compiled in
      let vk = B.vk pk in
      let publics = Array.to_list compiled.Cs.public_values in
      if not (B.verify vk compiled.Cs.public_values proof) then begin
        prerr_endline "zkdet: freshly generated proof failed to verify";
        exit 1
      end;
      let bundle =
        Codec.encode bundle_codec
          (B.name, (publics, (B.vk_to_bytes vk, B.proof_to_bytes proof)))
      in
      write_file out bundle;
      Printf.printf "wrote %s: backend=%s publics=%d proof=%d bytes bundle=%d bytes\n"
        out B.name (List.length publics)
        (B.proof_size_bytes proof) (String.length bundle);
      Telemetry.maybe_write_trace ()
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:"Prove the demo statement and write a portable proof bundle")
    Term.(const run $ backend_arg $ seed_arg $ out)

let verify_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Proof bundle written by [prove]")
  in
  let run file =
    let bytes = read_file file in
    match Codec.decode bundle_codec bytes with
    | Error e ->
      Printf.printf "verify FAILED: %s\n" (Codec.error_to_string e);
      exit 1
    | Ok (backend, (publics, (vk_bytes, proof_bytes))) -> (
      match Proof_system.by_name backend with
      | None ->
        Printf.printf "verify FAILED: bundle names unknown backend %S\n" backend;
        exit 1
      | Some (module B) -> (
        match (B.vk_of_bytes vk_bytes, B.proof_of_bytes proof_bytes) with
        | Error e, _ ->
          Printf.printf "verify FAILED: bad verification key: %s\n"
            (Codec.error_to_string e);
          exit 1
        | _, Error e ->
          Printf.printf "verify FAILED: bad proof: %s\n" (Codec.error_to_string e);
          exit 1
        | Ok vk, Ok proof ->
          let ok = B.verify vk (Array.of_list publics) proof in
          Printf.printf "verify %s: backend=%s publics=%d\n"
            (if ok then "OK" else "FAILED")
            backend (List.length publics);
          if not ok then exit 1))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify a proof bundle from bytes alone (separate process)")
    Term.(const run $ file)

(* Batched cross-process verification: read any number of [prove] bundles
   and check each backend's proofs with ONE folded pairing check instead
   of one per bundle.  Bundles may mix backends (grouped per backend) and
   circuits (the RLC fold supports mixed statements); the exit status is
   the conjunction of the per-backend batch verdicts. *)
let verify_batch_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Proof bundles written by [prove]")
  in
  let run files =
    let decoded =
      List.map
        (fun f ->
          match Codec.decode bundle_codec (read_file f) with
          | Error e ->
            Printf.printf "verify-batch FAILED: %s: %s\n" f
              (Codec.error_to_string e);
            exit 1
          | Ok bundle -> (f, bundle))
        files
    in
    (* Group by backend, preserving file order within each group. *)
    let backends =
      List.fold_left
        (fun acc (_, (backend, _)) ->
          if List.mem backend acc then acc else acc @ [ backend ])
        [] decoded
    in
    let all_ok =
      List.for_all
        (fun backend ->
          match Proof_system.by_name backend with
          | None ->
            Printf.printf
              "verify-batch FAILED: bundle names unknown backend %S\n" backend;
            false
          | Some (module B) ->
            let items =
              List.filter_map
                (fun (f, (b, (publics, (vk_bytes, proof_bytes)))) ->
                  if not (String.equal b backend) then None
                  else
                    match (B.vk_of_bytes vk_bytes, B.proof_of_bytes proof_bytes) with
                    | Error e, _ ->
                      Printf.printf
                        "verify-batch FAILED: %s: bad verification key: %s\n" f
                        (Codec.error_to_string e);
                      exit 1
                    | _, Error e ->
                      Printf.printf "verify-batch FAILED: %s: bad proof: %s\n" f
                        (Codec.error_to_string e);
                      exit 1
                    | Ok vk, Ok proof ->
                      Some (vk, Array.of_list publics, proof))
                decoded
            in
            let ok = B.verify_batch items in
            Printf.printf "verify-batch %s: backend=%s proofs=%d\n"
              (if ok then "OK" else "FAILED")
              backend (List.length items);
            ok)
        backends
    in
    Telemetry.maybe_write_trace ();
    if not all_ok then exit 1
  in
  Cmd.v
    (Cmd.info "verify-batch"
       ~doc:
         "Verify a block of proof bundles with one folded pairing check per \
          backend")
    Term.(const run $ files)

(* ------------------------------------------------------------------ *)
(* Ledger snapshot / restore. *)

(* Deterministic demo ledger: a mint, a mined block, a pending bid and
   some contract storage — enough to exercise every snapshot field. *)
let demo_chain () =
  let chain = Chain.create () in
  let alice = Chain.Address.of_seed "alice" in
  let bob = Chain.Address.of_seed "bob" in
  Chain.faucet chain alice 1_000_000;
  Chain.faucet chain bob 250_000;
  ignore
    (Chain.execute chain ~sender:alice ~label:"registry:mint" ~contract:"registry" (fun env ->
         Chain.emit env ~contract:"registry" ~name:"Mint"
           ~data:[ "token-1"; alice ]));
  Chain.storage_set chain ~contract:"registry" ~key:"token-1/owner" ~value:alice;
  Chain.storage_set chain ~contract:"registry" ~key:"token-1/uri"
    ~value:"zb00demo";
  ignore (Chain.mine chain);
  ignore
    (Chain.execute chain ~sender:bob ~label:"market:bid" ~contract:"market" (fun env ->
         Chain.emit env ~contract:"market" ~name:"Bid" ~data:[ "token-1"; "42" ]));
  chain

let chain_snapshot_cmd =
  let out =
    Arg.(
      value & opt string "chain.bin"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Snapshot output path")
  in
  let run out =
    let chain = demo_chain () in
    let bytes = Chain.snapshot chain in
    write_file out bytes;
    Printf.printf "wrote %s: %d bytes, %d block(s), %d pending\nstate hash: %s\n"
      out (String.length bytes) (Chain.block_count chain)
      (Chain.pending_count chain) (Chain.state_hash chain)
  in
  Cmd.v
    (Cmd.info "chain-snapshot"
       ~doc:"Serialize the demo ledger state to a canonical snapshot")
    Term.(const run $ out)

let chain_restore_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Snapshot written by [chain-snapshot]")
  in
  let run file =
    let bytes = read_file file in
    match Chain.restore bytes with
    | Error e ->
      Printf.printf "chain-restore FAILED: %s\n" (Codec.error_to_string e);
      exit 1
    | Ok chain ->
      let reencoded = Chain.snapshot chain in
      let ok = String.equal reencoded bytes && Chain.validate chain in
      Printf.printf "restored %d block(s), %d pending\nstate hash: %s\n"
        (Chain.block_count chain) (Chain.pending_count chain)
        (Chain.state_hash chain);
      Printf.printf "round-trip %s\n" (if ok then "OK" else "FAILED");
      if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "chain-restore"
       ~doc:"Restore a ledger snapshot and re-verify its canonical bytes")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* Journaled exchange + audit reconstruction. *)

let serve_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Expose a live ops server (GET /metrics, /healthz, /spans, /flame) \
           on 127.0.0.1:$(docv) for the duration of the run; 0 picks a free \
           port (printed to stderr).  The server is read-only: journals and \
           state hashes are unaffected.")

let exchange_cmd =
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Write a hash-chained ZJNL event journal of the run")
  in
  let chain_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chain-out" ] ~docv:"FILE"
          ~doc:"Write the final ledger snapshot (ZCHN) for audit joins")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:"Write telemetry in Prometheus text-exposition format")
  in
  let n =
    Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Dataset size")
  in
  let run journal chain_out prom serve seed n =
    if n < 1 then begin
      prerr_endline "zkdet: -n must be at least 1";
      exit 2
    end;
    let cfg =
      {
        Scenario.Config.default with
        Scenario.Config.seed;
        n;
        journal;
        prom;
        serve;
      }
    in
    let o = Scenario.run_cfg cfg in
    Option.iter
      (fun p ->
        write_file p (Chain.snapshot o.Scenario.chain);
        Printf.printf "wrote chain snapshot %s (%d block(s))\n" p
          (Chain.block_count o.Scenario.chain))
      chain_out;
    Option.iter (fun p -> Printf.printf "wrote Prometheus metrics %s\n" p) prom;
    Option.iter (fun p -> Printf.printf "wrote journal %s\n" p) journal;
    Printf.printf "exchange %s: proof %s, delivery %s\n"
      (if o.Scenario.ok then "OK" else "FAILED")
      (if o.Scenario.proof_ok then "verified" else "rejected")
      (if o.Scenario.delivered then "recovered" else "missing");
    if not o.Scenario.ok then exit 1
  in
  Cmd.v
    (Cmd.info "exchange"
       ~doc:"Run a seeded end-to-end ZKCP exchange, optionally journaled")
    Term.(const run $ journal $ chain_out $ prom $ serve_arg $ seed_arg $ n)

(* ------------------------------------------------------------------ *)
(* Sustained marketplace load through the mempool + parallel blocks. *)

let load_cmd =
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"Write a hash-chained ZJNL event journal of the run")
  in
  let chain_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "chain-out" ] ~docv:"FILE"
          ~doc:"Write the final ledger snapshot (ZCHN) for audit joins")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:"Write telemetry in Prometheus text-exposition format")
  in
  let accounts =
    Arg.(
      value & opt int 64
      & info [ "accounts" ] ~docv:"N" ~doc:"Distinct on-chain accounts")
  in
  let datasets =
    Arg.(
      value & opt int 32
      & info [ "datasets" ] ~docv:"N" ~doc:"Catalogue size (Zipf support)")
  in
  let blocks =
    Arg.(
      value & opt int 8
      & info [ "blocks" ] ~docv:"N" ~doc:"Blocks to produce")
  in
  let txs_per_block =
    Arg.(
      value & opt int 32
      & info [ "txs-per-block" ] ~docv:"N"
          ~doc:"Transactions submitted per block")
  in
  let skew =
    Arg.(
      value & opt float 1.0
      & info [ "skew" ] ~docv:"S"
          ~doc:
            "Zipf exponent for dataset popularity; 0 selects a disjoint \
             conflict-free assignment")
  in
  let work =
    Arg.(
      value & opt int 16
      & info [ "work" ] ~docv:"N"
          ~doc:"Per-transaction hash-chain iterations")
  in
  let run journal chain_out prom serve seed accounts datasets blocks
      txs_per_block skew work =
    if blocks < 1 || txs_per_block < 1 then begin
      prerr_endline "zkdet: --blocks and --txs-per-block must be at least 1";
      exit 2
    end;
    let cfg =
      {
        Scenario.Config.default with
        Scenario.Config.seed;
        accounts;
        datasets;
        blocks;
        txs_per_block;
        skew;
        work;
        journal;
        prom;
        serve;
      }
    in
    let o = Scenario.load cfg in
    Option.iter
      (fun p ->
        write_file p (Chain.snapshot o.Scenario.load_chain);
        Printf.printf "wrote chain snapshot %s (%d block(s))\n" p
          (Chain.block_count o.Scenario.load_chain))
      chain_out;
    Option.iter (fun p -> Printf.printf "wrote Prometheus metrics %s\n" p) prom;
    Option.iter (fun p -> Printf.printf "wrote journal %s\n" p) journal;
    Printf.printf
      "load %s: %d submitted, %d executed in %d block(s) (%d re-executed)\n"
      (if o.Scenario.load_ok then "OK" else "FAILED")
      o.Scenario.submitted o.Scenario.executed o.Scenario.blocks_built
      o.Scenario.reexecuted;
    Printf.printf "throughput %.0f tx/s, latency p50 %.2f ms p95 %.2f ms p99 %.2f ms\n"
      o.Scenario.tps o.Scenario.p50_ms o.Scenario.p95_ms o.Scenario.p99_ms;
    Printf.printf "state hash: %s\n" (Chain.state_hash o.Scenario.load_chain);
    if not o.Scenario.load_ok then exit 1
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a Zipf-skewed marketplace workload through the mempool and \
          the parallel block builder")
    Term.(
      const run $ journal $ chain_out $ prom $ serve_arg $ seed_arg $ accounts
      $ datasets $ blocks $ txs_per_block $ skew $ work)

let audit_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOURNAL" ~doc:"ZJNL journal written by [exchange]")
  in
  let chain_snapshot =
    Arg.(
      value
      & opt (some file) None
      & info [ "chain-snapshot" ] ~docv:"FILE"
          ~doc:"Ledger snapshot (ZCHN) to cross-check the journal against")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the report as JSON")
  in
  let run file chain_snapshot json_out =
    match Journal.read_file file with
    | Error e ->
      Printf.printf "audit FAILED: %s\n" (Journal.error_to_string e);
      exit 1
    | Ok entries ->
      let chain =
        match chain_snapshot with
        | None -> None
        | Some p -> (
          match Chain.restore (read_file p) with
          | Error e ->
            Printf.printf "audit FAILED: bad chain snapshot: %s\n"
              (Codec.error_to_string e);
            exit 2
          | Ok chain ->
            Some
              (List.map
                 (fun (r : Chain.receipt) ->
                   {
                     Audit.fact_tx_hash = r.Chain.tx_hash;
                     fact_label = r.Chain.tx_label;
                     fact_ok = Result.is_ok r.Chain.status;
                     fact_block = r.Chain.block_number;
                     fact_events =
                       List.map
                         (fun (ev : Chain.event) ->
                           (ev.Chain.event_contract, ev.Chain.event_name,
                            ev.Chain.event_data))
                         r.Chain.events;
                   })
                 (Chain.receipts chain)))
      in
      let report = Audit.run ?chain entries in
      print_string (Audit.render report);
      Option.iter
        (fun p ->
          write_file p (Json.to_string_pretty (Audit.to_json report)))
        json_out;
      if not report.Audit.ok then exit 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Rebuild and verify the exchange timeline from a hash-chained \
          journal")
    Term.(const run $ file $ chain_snapshot $ json_out)

(* ------------------------------------------------------------------ *)
(* Standalone ops server tailing a (possibly growing) journal. *)

let serve_cmd =
  let journal_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"ZJNL journal to tail (may still be growing)")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow" ]
          ~doc:
            "Keep tailing for new records (like tail -f); without this the \
             journal is read once and served until --duration expires")
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Port to listen on; 0 picks a free one (printed)")
  in
  let duration =
    Arg.(
      value & opt float 0.0
      & info [ "duration" ] ~docv:"SEC"
          ~doc:"Stop after this many seconds; 0 means run until killed")
  in
  let run journal follow port duration =
    (* Shared tail state: the poll loop writes, /metrics reads. *)
    let m = Mutex.create () in
    let stats = ref Audit.empty_stats in
    let entries_rev = ref [] in
    let hash_ok = ref true in
    let audit_ok = ref true in
    let last_error = ref None in
    let locked f =
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) f
    in
    let extra () =
      locked @@ fun () ->
      let s = !stats in
      let b = Buffer.create 512 in
      let gauge name help v =
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
        Buffer.add_string b (Printf.sprintf "%s %d\n" name v)
      in
      let flag name help v = gauge name help (if v then 1 else 0) in
      gauge "zkdet_journal_entries" "Journal records consumed by the tail."
        s.Audit.st_entries;
      gauge "zkdet_journal_last_seq"
        "Highest sequence number seen (-1 before the first record)."
        s.Audit.st_last_seq;
      flag "zkdet_journal_hash_ok"
        "1 while the SHA-256 hash chain verifies, 0 after a break."
        !hash_ok;
      flag "zkdet_journal_audit_ok"
        "1 while the partial audit over the consumed prefix reports no errors."
        !audit_ok;
      gauge "zkdet_journal_txs_submitted" "Tx_submitted events seen."
        s.Audit.st_txs_submitted;
      gauge "zkdet_journal_txs_mined" "Tx_mined events seen."
        s.Audit.st_txs_mined;
      gauge "zkdet_journal_txs_reverted" "Tx_reverted events seen."
        s.Audit.st_txs_reverted;
      gauge "zkdet_journal_blocks_built" "Block_built events seen."
        s.Audit.st_blocks_built;
      gauge "zkdet_journal_proofs_verified"
        "Proof_verified events with ok=true seen."
        s.Audit.st_proofs_verified;
      gauge "zkdet_journal_traces_begun" "Trace_begin events seen."
        s.Audit.st_traces_begun;
      gauge "zkdet_journal_traces_ended" "Trace_end events seen."
        s.Audit.st_traces_ended;
      Buffer.contents b
    in
    let server = Ops.start ~port (Ops.routes ~extra ()) in
    Printf.printf "ops server listening on http://127.0.0.1:%d\n%!"
      (Ops.port server);
    let tail = Journal.create_tail journal in
    let poll () =
      match Journal.poll_tail tail with
      | Ok [] -> ()
      | Ok fresh ->
        locked (fun () ->
            stats := List.fold_left Audit.stats_add !stats fresh;
            entries_rev := List.rev_append fresh !entries_rev;
            (* Full causal audit over the consumed prefix, with the
               end-of-journal obligations relaxed (the tail is mid-run). *)
            let report = Audit.run ~partial:true (List.rev !entries_rev) in
            audit_ok := report.Audit.ok)
      | Error e ->
        locked (fun () ->
            hash_ok := false;
            last_error := Some (Journal.error_to_string e))
    in
    let t0 = Unix.gettimeofday () in
    let expired () =
      duration > 0.0 && Unix.gettimeofday () -. t0 >= duration
    in
    poll ();
    (if follow then
       while (not (expired ())) && !hash_ok do
         Unix.sleepf 0.2;
         poll ()
       done
     else
       while not (expired ()) do
         Unix.sleepf 0.2
       done);
    Ops.stop server;
    let s = locked (fun () -> !stats) in
    Printf.printf
      "tailed %d record(s) (last seq %d): %d tx mined, %d reverted, %d \
       block(s), audit %s\n"
      s.Audit.st_entries s.Audit.st_last_seq s.Audit.st_txs_mined
      s.Audit.st_txs_reverted s.Audit.st_blocks_built
      (if !audit_ok then "ok" else "FAILED");
    match !last_error with
    | Some e ->
      Printf.printf "journal hash chain BROKEN: %s\n" e;
      exit 1
    | None -> if not !audit_ok then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve live metrics while tailing a ZJNL journal, verifying its \
          hash chain incrementally")
    Term.(const run $ journal_arg $ follow $ port $ duration)

(* ------------------------------------------------------------------ *)
(* Flamegraph export from a JSONL telemetry trace. *)

let flame_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"JSONL telemetry trace (written via ZKDET_TRACE)")
  in
  let fmt =
    Arg.(
      value
      & opt (enum [ ("collapsed", `Collapsed); ("speedscope", `Speedscope) ])
          `Collapsed
      & info [ "fmt" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,collapsed) (flamegraph.pl stack lines) or \
             $(b,speedscope) (JSON for speedscope.app)")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write here instead of stdout")
  in
  let run file fmt out =
    let lines =
      let ic = open_in file in
      let acc = ref [] in
      (try
         while true do
           acc := input_line ic :: !acc
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !acc
    in
    match Telemetry.Report.of_jsonl lines with
    | Error e ->
      Printf.printf "flame FAILED: %s\n" e;
      exit 1
    | Ok report ->
      let spans = report.Telemetry.Report.spans in
      if spans = [] then prerr_endline "zkdet: warning: trace has no spans";
      let body =
        match fmt with
        | `Collapsed -> Flame.collapsed spans
        | `Speedscope -> Json.to_string (Flame.speedscope spans)
      in
      (match out with
      | None -> print_string body
      | Some p ->
        write_file p body;
        Printf.printf "wrote %s (%d bytes)\n" p (String.length body))
  in
  Cmd.v
    (Cmd.info "flame"
       ~doc:
         "Convert a JSONL telemetry trace into a flamegraph (collapsed-stack \
          or speedscope)")
    Term.(const run $ file $ fmt $ out)

let () =
  let doc = "ZKDET: traceable, privacy-preserving data exchange" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "zkdet" ~doc)
          [ params_cmd; selftest_cmd; ceremony_cmd; trace_check_cmd;
            prove_cmd; verify_cmd; verify_batch_cmd; chain_snapshot_cmd; chain_restore_cmd;
            exchange_cmd; load_cmd; audit_cmd; serve_cmd; flame_cmd ]))
