(* A multi-party marketplace tour (paper Fig. 1 + Fig. 2):

     dune exec examples/marketplace_tour.exe

   Two providers publish datasets; a data broker aggregates them, splits
   the aggregate, and sells one slice at a clock auction. A buyer then
   traces the slice's provenance through prevIds[] and re-verifies every
   proof in its lineage — the traceability story of the paper. *)

module Fr = Zkdet_field.Bn254.Fr
module Env = Zkdet_core.Env
module Marketplace = Zkdet_core.Marketplace
module Erc721 = Zkdet_contracts.Erc721
module Auction = Zkdet_contracts.Auction
module Chain = Zkdet_chain.Chain

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let () =
  step "setup";
  let env = Env.create ~log2_max_gates:13 () in
  let operator = Chain.Address.of_seed "operator" in
  let m = Marketplace.bootstrap env ~operator in
  let provider_a = Chain.Address.of_seed "provider-a" in
  let provider_b = Chain.Address.of_seed "provider-b" in
  let broker = Chain.Address.of_seed "broker" in
  let buyer = Chain.Address.of_seed "buyer" in

  step "two providers publish source datasets";
  let pub owner v0 =
    match Marketplace.publish m ~owner [| Fr.of_int v0 |] with
    | Ok r -> r
    | Error e -> failwith e
  in
  let tok_a, sealed_a = pub provider_a 1001 in
  let tok_b, sealed_b = pub provider_b 2002 in
  Printf.printf "   provider A minted #%d, provider B minted #%d\n" tok_a tok_b;

  step "providers sell their tokens to the broker (simple transfers)";
  Chain.faucet m.Marketplace.chain broker 50_000_000;
  let hand_over tok from =
    ignore
      (Erc721.transfer_from m.Marketplace.nft m.Marketplace.chain ~sender:from
         ~from ~to_:broker ~token_id:tok)
  in
  hand_over tok_a provider_a;
  hand_over tok_b provider_b;

  step "broker aggregates A || B into a new data asset (pi_t: aggregation)";
  let agg_token, agg_sealed =
    match
      Marketplace.derive m ~owner:broker
        ~parents:[ (tok_a, sealed_a); (tok_b, sealed_b) ]
        `Aggregate
    with
    | Ok [ r ] -> r
    | Ok _ | Error _ -> failwith "aggregate failed"
  in
  Printf.printf "   aggregate token #%d (size %d)\n" agg_token
    (Zkdet_core.Transform.size agg_sealed);

  step "broker partitions the aggregate back into two slices (pi_t: partition)";
  let slices =
    match
      Marketplace.derive m ~owner:broker ~parents:[ (agg_token, agg_sealed) ]
        (`Partition [ 1; 1 ])
    with
    | Ok rs -> rs
    | Error _ -> failwith "partition failed"
  in
  let slice_token, _slice_sealed = List.hd slices in
  Printf.printf "   slice tokens: %s\n"
    (String.concat ", " (List.map (fun (id, _) -> "#" ^ string_of_int id) slices));

  step "provenance of the first slice (walk prevIds[] to the roots)";
  let lineage = Erc721.provenance m.Marketplace.nft slice_token in
  List.iter
    (fun t ->
      Printf.printf "   #%d  %-22s parents=[%s]\n" t.Erc721.token_id
        (match t.Erc721.transform with
        | None -> "source"
        | Some k -> Erc721.transform_name k)
        (String.concat ";" (List.map string_of_int t.Erc721.prev_ids)))
    lineage;

  step "buyer audits the slice: every pi_e and pi_t in the lineage";
  (match Marketplace.audit_provenance m ~auditor_id:buyer slice_token with
  | Ok n -> Printf.printf "   lineage audit OK: %d tokens verified\n" n
  | Error _ -> failwith "lineage audit failed");

  step "broker lists the slice at a clock auction";
  let auction, _ = Auction.deploy m.Marketplace.chain ~deployer:operator m.Marketplace.nft in
  let listing, _ =
    Auction.list_token auction m.Marketplace.chain ~seller:broker
      ~token_id:slice_token ~start_price:100_000 ~reserve_price:20_000
      ~decay_per_block:10_000 ~predicate:"slice of aggregated provider data"
  in
  let listing = Option.get listing in
  (* a few blocks pass; the clock price decays *)
  for _ = 1 to 4 do
    ignore (Chain.mine m.Marketplace.chain)
  done;
  let price = Option.get (Auction.current_price auction m.Marketplace.chain listing) in
  Printf.printf "   clock price after 4 blocks: %d\n" price;
  Chain.faucet m.Marketplace.chain buyer (price + 10_000_000);
  let r = Auction.bid auction m.Marketplace.chain ~bidder:buyer ~listing_id:listing ~offer:price in
  (match r.Chain.status with
  | Ok () ->
    Printf.printf "   buyer won at %d; owner of #%d is now buyer: %b\n" price
      slice_token
      (Erc721.owner_of m.Marketplace.nft slice_token = Some buyer)
  | Error e -> failwith ("bid failed: " ^ Chain.error_to_string e));
  ignore (Chain.mine m.Marketplace.chain);
  Printf.printf "   chain validates: %b\n" (Chain.validate m.Marketplace.chain);
  print_endline "\nmarketplace tour complete."
