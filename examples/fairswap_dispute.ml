(* FairSwap vs ZKDET (paper §VII):

     dune exec examples/fairswap_dispute.exe

   A cheating seller advertises premium data but delivers junk. Under
   FairSwap the buyer catches it AFTER paying, by submitting an on-chain
   proof of misbehavior whose gas grows with the data size. Under ZKDET
   the fraud is impossible to begin with: the seller cannot produce pi_p
   for data that does not satisfy the advertised predicate. *)

module Fr = Zkdet_field.Bn254.Fr
module Env = Zkdet_core.Env
module Circuits = Zkdet_core.Circuits
module Transform = Zkdet_core.Transform
module Exchange = Zkdet_core.Exchange
module Fairswap = Zkdet_core.Fairswap
module Chain = Zkdet_chain.Chain
module Fairswap_escrow = Zkdet_contracts.Fairswap_escrow
module Poseidon = Zkdet_poseidon.Poseidon

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let seller = Chain.Address.of_seed "seller"
let buyer = Chain.Address.of_seed "buyer"

let () =
  let chain = Chain.create () in
  List.iter (fun a -> Chain.faucet chain a 50_000_000) [ seller; buyer ];
  let advertised = Array.init 64 (fun i -> Fr.of_int (1_000_000 + i)) in
  let junk = Array.init 64 (fun i -> Fr.of_int i) in

  step "FAIRSWAP: seller advertises premium data, commits junk ciphertext";
  let cheat = Fairswap.seller_cheat advertised junk in
  let r_c, r_d = Fairswap.roots cheat in
  let fs, _ = Fairswap_escrow.deploy chain ~deployer:seller in
  let deal, _ =
    Fairswap_escrow.lock fs chain ~buyer ~seller ~amount:1_000_000
      ~root_ciphertext:r_c ~root_plaintext:r_d ~depth:cheat.Fairswap.depth
      ~h_k:(Poseidon.hash [ cheat.Fairswap.key ]) ~dispute_window:10
  in
  let deal = Option.get deal in
  ignore
    (Fairswap_escrow.reveal_key fs chain ~seller ~deal_id:deal
       ~key:cheat.Fairswap.key);
  Printf.printf "   buyer paid and the key is revealed — decrypting...\n";
  let pom =
    Option.get
      (Fairswap.buyer_check ~key:cheat.Fairswap.key
         ~ciphertext:cheat.Fairswap.ciphertext
         ~ciphertext_tree:cheat.Fairswap.ciphertext_tree
         ~advertised_tree:cheat.Fairswap.plaintext_tree)
  in
  Printf.printf "   junk detected at block %d; submitting proof of misbehavior\n"
    pom.Fairswap_escrow.leaf_index;
  let r = Fairswap_escrow.complain fs chain ~buyer ~deal_id:deal pom in
  (match r.Chain.status with
  | Ok () ->
    Printf.printf
      "   refunded — but the dispute cost %d gas (grows with data size),\n\
      \   the buyer was exposed until the dispute, and the key is PUBLIC.\n"
      r.Chain.gas_used
  | Error e -> failwith (Chain.error_to_string e));

  step "ZKDET: the same fraud cannot even start";
  let env = Env.create ~log2_max_gates:13 () in
  let junk_sealed = Transform.seal ~st:env.Env.rng (Array.sub junk 0 2) in
  let premium_sum =
    Array.fold_left Fr.add Fr.zero (Array.sub advertised 0 2)
  in
  let predicate = Circuits.Sum_equals premium_sum in
  Printf.printf
    "   seller tries to prove pi_p that junk satisfies the premium predicate...\n";
  (try
     ignore (Exchange.prove_validation env junk_sealed predicate);
     failwith "unreachable: the prover must refuse"
   with Invalid_argument msg ->
     Printf.printf "   prover refuses: %s\n" msg);
  Printf.printf
    "   no valid pi_p, no payment lock — the buyer never spends a wei.\n";
  print_endline "\nfairswap dispute demo complete."
